//! Assembles the full analysis, renders it, and diffs two runs.
//!
//! [`analyze`] is the pure core: trace in, [`Analysis`] out, no I/O —
//! identical traces produce identical analyses, so re-analysis is
//! byte-for-byte reproducible. [`Analysis::render`] is the terminal
//! report; [`Analysis::artifact`] exports the same numbers as a
//! bench-schema artifact (harness `analyze`) whose duration rows feed
//! [`dakc_bench::compare`], which is what [`diff_bodies`] drives for
//! `dakc analyze --diff A B`.

use dakc_bench::compare::{compare_bodies, CompareReport};
use dakc_bench::{fmt_secs, Artifact, BenchArgs, Table};
use dakc_sim::telemetry::json::{parse, JsonValue};
use dakc_sim::telemetry::{EventKind, ParsedTrace};

use crate::critical::{critical_path, segments, stage_names, CriticalPath};
use crate::matrix::CommMatrix;
use dakc_bench::fmt_bytes;
use crate::overlap::{rank_overlap, LoadReport};

/// Everything `dakc analyze` reports about one trace.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Ranks (process tracks) in the trace.
    pub nodes: usize,
    /// Decoded events.
    pub events: usize,
    /// Trace rows the reader did not recognize.
    pub skipped: usize,
    /// Whole-run span: last event − first event, seconds.
    pub e2e_s: f64,
    /// Named phase wall-clock durations (slowest rank), ascending id.
    pub phases: Vec<(String, f64)>,
    /// Critical path, when the trace closed any flows.
    pub critical: Option<CriticalPath>,
    /// Per-rank load and overlap.
    pub load: LoadReport,
    /// P×P traffic matrix.
    pub matrix: CommMatrix,
}

/// Phase names matching `dakc_net::supervisor::Phase` — used only when
/// every observed id fits the distributed runtime's numbering, so
/// simulator phase counters keep neutral `phase<N>` labels.
const NET_PHASES: [&str; 5] = ["setup", "parse", "drain", "count", "gather"];

fn phase_durations(trace: &ParsedTrace) -> Vec<(String, f64)> {
    // Per node: sort its Phase marks by time; each phase runs to the
    // next mark (or the node's last event). Report the slowest rank's
    // wall-clock per phase — that is what gates the run.
    let mut per_node: std::collections::BTreeMap<u32, Vec<(f64, u32)>> = Default::default();
    let mut node_end: std::collections::BTreeMap<u32, f64> = Default::default();
    for e in &trace.events {
        let node = trace.node_of(e.pe);
        let end = node_end.entry(node).or_insert(e.ts);
        *end = end.max(e.ts);
        if let EventKind::Phase { phase } = e.kind {
            per_node.entry(node).or_default().push((e.ts, phase));
        }
    }
    let mut dur: std::collections::BTreeMap<u32, f64> = Default::default();
    for (node, mut marks) in per_node {
        marks.sort_by(|a, b| a.0.total_cmp(&b.0));
        for i in 0..marks.len() {
            let end = marks.get(i + 1).map_or(node_end[&node], |m| m.0);
            let d = dur.entry(marks[i].1).or_insert(0.0);
            *d = d.max(end - marks[i].0);
        }
    }
    let named = dur.keys().all(|&id| (1..=4).contains(&id));
    dur.into_iter()
        .map(|(id, d)| {
            let name = if named {
                NET_PHASES[id as usize].to_string()
            } else {
                format!("phase{id}")
            };
            (name, d)
        })
        .collect()
}

/// Runs the whole analysis over one parsed trace.
pub fn analyze(trace: &ParsedTrace) -> Analysis {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for e in &trace.events {
        lo = lo.min(e.ts);
        hi = hi.max(e.ts);
    }
    Analysis {
        nodes: trace.nodes(),
        events: trace.events.len(),
        skipped: trace.skipped,
        e2e_s: if hi > lo { hi - lo } else { 0.0 },
        phases: phase_durations(trace),
        critical: critical_path(&segments(trace)),
        load: rank_overlap(trace),
        matrix: CommMatrix::from_trace(trace),
    }
}

impl Analysis {
    /// The terminal report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run: {} rank(s), {} events ({} unrecognized rows), span {}\n",
            self.nodes,
            self.events,
            self.skipped,
            fmt_secs(self.e2e_s)
        ));
        if !self.phases.is_empty() {
            out.push_str("phases (slowest rank):\n");
            for (name, d) in &self.phases {
                out.push_str(&format!("  {name:<8} {}\n", fmt_secs(*d)));
            }
        }
        match &self.critical {
            Some(p) => {
                out.push_str(&format!(
                    "critical path: {} hop(s), span {}\n",
                    p.hops(),
                    fmt_secs(p.span_s)
                ));
                for (name, t) in stage_names().iter().zip(p.stage_s) {
                    out.push_str(&format!("  {name:<8} {}\n", fmt_secs(t)));
                }
                out.push_str(&format!("  {:<8} {}\n", "compute", fmt_secs(p.compute_s)));
                out.push_str(&format!(
                    "  telescoping: stages+compute {} vs span {}\n",
                    fmt_secs(p.accounted_s()),
                    fmt_secs(p.span_s)
                ));
            }
            None => out.push_str("critical path: no sampled flows in trace\n"),
        }
        if !self.load.ranks.is_empty() {
            out.push_str(&format!(
                "load: imbalance {:.2}x, straggler rank {}\n",
                self.load.imbalance, self.load.straggler
            ));
            out.push_str(&format!(
                "  {:<5} {:>10} {:>10} {:>10} {:>9}\n",
                "rank", "busy", "barrier", "comm", "overlap"
            ));
            for r in &self.load.ranks {
                out.push_str(&format!(
                    "  {:<5} {:>10} {:>10} {:>10} {:>8.1}%{}\n",
                    r.node,
                    fmt_secs(r.busy_s),
                    fmt_secs(r.barrier_s),
                    fmt_secs(r.comm_s),
                    r.overlap * 100.0,
                    if r.node == self.load.straggler { "  <- straggler" } else { "" }
                ));
            }
        }
        if !self.matrix.is_empty() {
            out.push_str(&format!(
                "comm matrix ({} ranks, {} total):\n",
                self.matrix.n,
                fmt_bytes(self.matrix.total_bytes())
            ));
            out.push_str(&self.matrix.render());
        }
        out
    }

    /// Exports the analysis as a bench-schema artifact (harness
    /// `analyze`): duration rows for the compare gate, counters for
    /// everything else (overlap in basis points, the comm matrix as
    /// per-peer byte/frame counters).
    pub fn artifact(&self) -> Artifact {
        // Stamped with default params: a trace does not carry the
        // generating run's scale shift, and a constant stamp is what
        // lets two analyze artifacts pass the compare param gate.
        let mut a = Artifact::new("analyze", &BenchArgs::default());
        let mut t = Table::new(&["Quantity", "Time"]);
        t.row(vec!["span".into(), fmt_secs(self.e2e_s)]);
        if let Some(p) = &self.critical {
            t.row(vec!["critical.span".into(), fmt_secs(p.span_s)]);
            for (name, v) in stage_names().iter().zip(p.stage_s) {
                t.row(vec![format!("critical.{name}"), fmt_secs(v)]);
            }
            t.row(vec!["critical.compute".into(), fmt_secs(p.compute_s)]);
        }
        for (name, d) in &self.phases {
            t.row(vec![format!("phase.{name}"), fmt_secs(*d)]);
        }
        a.table(&t);
        let mut r = Table::new(&["Rank", "Busy", "Comm"]);
        for rank in &self.load.ranks {
            r.row(vec![
                rank.node.to_string(),
                fmt_secs(rank.busy_s),
                fmt_secs(rank.comm_s),
            ]);
        }
        a.table(&r);
        let m = a.metrics();
        m.inc("analyze.ranks", self.nodes as u64);
        m.inc("analyze.events", self.events as u64);
        m.inc("analyze.skipped", self.skipped as u64);
        if let Some(p) = &self.critical {
            m.inc("analyze.critical.hops", p.hops() as u64);
        }
        for rank in &self.load.ranks {
            m.inc(
                &format!("analyze.rank{}.overlap_bp", rank.node),
                (rank.overlap * 10_000.0).round() as u64,
            );
        }
        m.inc("analyze.imbalance_bp", (self.load.imbalance * 10_000.0).round() as u64);
        self.matrix.to_metrics(m);
        a
    }
}

/// Exports a metrics dump (`--metrics` output of a launch or count run)
/// as an `analyze`-harness artifact, so two runs' metrics — say a
/// `--superkmer` run against a baseline — are diffable with
/// `analyze --diff`. Transport totals, the per-peer comm matrix
/// (`net.rank<i>.to<j>.bytes_sent`, the [`crate::matrix::CommMatrix`]
/// wire form) and the `net.superkmer.*` compression counters all ride
/// along, which is what makes the bytes-on-wire delta visible.
pub fn metrics_artifact(m: &dakc_sim::telemetry::MetricsRegistry) -> Artifact {
    let mut a = Artifact::new("analyze", &BenchArgs::default());
    // The schema requires a row; a constant identity row keeps two
    // metrics artifacts matching in the compare gate (no duration
    // cells), leaving the counters to carry all the data.
    let mut t = Table::new(&["Source"]);
    t.row(vec!["metrics".into()]);
    a.table(&t);
    let out = a.metrics();
    for (name, v) in m.counters() {
        if name.starts_with("net.") || name.starts_with("agg.") || name.starts_with("run.") {
            out.inc(name, v);
        }
    }
    a
}

fn counters(doc: &JsonValue) -> Vec<(String, u64)> {
    doc.get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(JsonValue::as_obj)
        .map(|obj| {
            obj.iter()
                .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f as u64)))
                .collect()
        })
        .unwrap_or_default()
}

/// Diffs two `analyze` artifacts: duration cells through the bench
/// compare gate, analysis counters (overlap, traffic) as explicit
/// before → after lines. Returns the rendered report and whether any
/// duration regressed past `threshold`.
pub fn diff_bodies(baseline: &str, current: &str, threshold: f64) -> Result<(String, bool), String> {
    let mut rep = CompareReport::default();
    compare_bodies("analyze", baseline, current, &mut rep)?;
    let mut out = rep.render(threshold);
    let (b, c) = (parse(baseline)?, parse(current)?);
    let (bc, cc) = (counters(&b), counters(&c));
    let lookup = |set: &[(String, u64)], k: &str| {
        set.iter().find(|(n, _)| n == k).map(|&(_, v)| v)
    };
    let mut lines = Vec::new();
    for (name, cur) in &cc {
        let interesting = name.ends_with(".overlap_bp")
            || name.ends_with(".bytes_sent")
            || name.starts_with("net.superkmer.")
            || *name == "analyze.imbalance_bp";
        if !interesting {
            continue;
        }
        let base = lookup(&bc, name);
        if base != Some(*cur) {
            let base_str = base.map_or("-".into(), |v| v.to_string());
            lines.push(format!("  {name}: {base_str} -> {cur}\n"));
        }
    }
    if !lines.is_empty() {
        out.push_str("counter deltas:\n");
        for l in lines {
            out.push_str(&l);
        }
    }
    let regressed = !rep.regressions(threshold).is_empty();
    Ok((out, regressed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dakc_sim::telemetry::Event;

    fn sample_trace() -> ParsedTrace {
        let ev = |ts: f64, pe: u32, kind: EventKind| Event { ts, pe, kind };
        ParsedTrace {
            events: vec![
                ev(0.0, 0, EventKind::Phase { phase: 1 }),
                ev(0.0, 1, EventKind::Phase { phase: 1 }),
                ev(0.1, 0, EventKind::MsgSend { dst: 1, tag: 9, bytes: 256 }),
                ev(
                    0.5,
                    1,
                    EventKind::FlowRecv {
                        flow: 4,
                        channel: 0,
                        src: 0,
                        l3_s: 0.05,
                        l2_s: 0.05,
                        l1_s: 0.05,
                        l0_s: 0.05,
                        net_s: 0.15,
                        drain_s: 0.05,
                        e2e_s: 0.4,
                    },
                ),
                ev(0.8, 0, EventKind::Phase { phase: 2 }),
                ev(0.8, 1, EventKind::Phase { phase: 2 }),
                ev(1.0, 0, EventKind::Phase { phase: 3 }),
                ev(1.0, 1, EventKind::Phase { phase: 3 }),
            ],
            ..ParsedTrace::default()
        }
    }

    #[test]
    fn analysis_is_deterministic_and_telescopes() {
        let t = sample_trace();
        let (a, b) = (analyze(&t), analyze(&t));
        assert_eq!(a.render(), b.render());
        assert_eq!(a.artifact().to_json(), b.artifact().to_json());
        let p = a.critical.as_ref().unwrap();
        assert!((p.accounted_s() - p.span_s).abs() < 1e-9);
        for r in &a.load.ranks {
            assert!((0.0..=1.0).contains(&r.overlap));
        }
        assert_eq!(a.matrix.bytes_at(0, 1), 256);
    }

    #[test]
    fn distributed_phase_ids_get_names() {
        let a = analyze(&sample_trace());
        let names: Vec<&str> = a.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["parse", "drain", "count"]);
    }

    #[test]
    fn sim_phase_ids_stay_neutral() {
        let ev = |ts: f64, pe: u32, kind: EventKind| Event { ts, pe, kind };
        let t = ParsedTrace {
            events: vec![
                ev(0.0, 0, EventKind::Phase { phase: 0 }),
                ev(1.0, 0, EventKind::Phase { phase: 1 }),
            ],
            ..ParsedTrace::default()
        };
        let names: Vec<String> = analyze(&t).phases.into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["phase0", "phase1"]);
    }

    #[test]
    fn artifact_validates_and_diffs_cleanly_against_itself() {
        let body = analyze(&sample_trace()).artifact().to_json();
        assert_eq!(dakc_bench::artifact::validate(&body).unwrap(), "analyze");
        let (report, regressed) = diff_bodies(&body, &body, 1.5).unwrap();
        assert!(!regressed, "{report}");
        assert!(!report.contains("counter deltas"), "{report}");
    }

    #[test]
    fn metrics_artifact_diff_surfaces_superkmer_compression() {
        let mut base = dakc_sim::telemetry::MetricsRegistry::new();
        base.inc("net.bytes_sent", 4000);
        base.inc("net.rank0.to1.bytes_sent", 4000);
        base.inc("flow.opened", 9); // not a transport counter: must not diff
        let mut cur = dakc_sim::telemetry::MetricsRegistry::new();
        cur.inc("net.bytes_sent", 1000);
        cur.inc("net.rank0.to1.bytes_sent", 1000);
        cur.inc("net.superkmer.spans", 7);
        cur.inc("net.superkmer.bases_saved", 3000);
        let b = metrics_artifact(&base).to_json();
        let c = metrics_artifact(&cur).to_json();
        assert_eq!(dakc_bench::artifact::validate(&b).unwrap(), "analyze");
        let (report, regressed) = diff_bodies(&b, &c, 1.5).unwrap();
        assert!(!regressed, "{report}");
        assert!(report.contains("net.bytes_sent: 4000 -> 1000"), "{report}");
        assert!(report.contains("net.rank0.to1.bytes_sent: 4000 -> 1000"), "{report}");
        assert!(report.contains("net.superkmer.spans: - -> 7"), "{report}");
        assert!(report.contains("net.superkmer.bases_saved: - -> 3000"), "{report}");
        assert!(!report.contains("flow.opened"), "{report}");
    }

    #[test]
    fn diff_flags_regression_and_counter_movement() {
        let base = analyze(&sample_trace()).artifact().to_json();
        // Slow the measured span 10x and shift an overlap counter.
        let cur = base
            .replace("\"Quantity\":\"span\",\"Time\":\"1.000s\"", "\"Quantity\":\"span\",\"Time\":\"10.000s\"")
            .replace("\"analyze.rank0.overlap_bp\":10000", "\"analyze.rank0.overlap_bp\":5000");
        assert_ne!(base, cur, "replacements must hit: {base}");
        let (report, regressed) = diff_bodies(&base, &cur, 1.5).unwrap();
        assert!(regressed, "{report}");
        assert!(report.contains("analyze.rank0.overlap_bp: 10000 -> 5000"), "{report}");
    }
}
