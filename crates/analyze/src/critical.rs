//! Critical path through the sampled flow graph.
//!
//! Every `FlowRecv` closes one sampled message and carries its six
//! telescoping stage residencies (l3/l2/l1/l0/net/drain, summing to
//! `e2e_s`), so each close defines a **segment**: the interval
//! `[close − e2e, close]` on which that message was in flight through
//! the cascade. A segment *depends on* an earlier one when the earlier
//! message landed on the node that originated it before it opened —
//! receive-before-send along the same rank is the only cross-rank
//! happens-before edge the trace records.
//!
//! The critical path is the dependency-respecting chain with the
//! largest span. Time inside chained segments is attributed to the
//! conveyor stages; the gaps between them (the origin rank was doing
//! something other than shipping this sample — parsing, sorting,
//! counting) are attributed to **compute**. Stage sums plus compute
//! telescope exactly to the chain span, by construction: each segment
//! contributes `close − open = Σ stages` and each gap contributes
//! itself.

use dakc_conveyors::Stage;
use dakc_sim::telemetry::{EventKind, ParsedTrace};

/// One sampled message's life as an interval, in node coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Flow id (pairs the send and recv arrows).
    pub flow: u64,
    /// Application channel (NORMAL/HEAVY/SINGLE).
    pub channel: u8,
    /// Node (rank / process track) that opened the flow.
    pub src_node: u32,
    /// Node the flow landed on.
    pub dst_node: u32,
    /// When the first k-mer of the sampled packet entered L3 (seconds).
    pub open: f64,
    /// When its records were accumulated at the destination (seconds).
    pub close: f64,
    /// The six stage residencies, in [`Stage::ALL`] order.
    pub stages: [f64; 6],
}

/// The longest dependency-respecting chain of segments.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The chain, earliest first.
    pub segments: Vec<Segment>,
    /// Total residency per stage along the chain ([`Stage::ALL`] order).
    pub stage_s: [f64; 6],
    /// Total gap time between chained segments (compute on the relay
    /// rank between receiving one sample and opening the next).
    pub compute_s: f64,
    /// Chain span: last close − first open. Always equals
    /// `stage_s.iter().sum() + compute_s` up to float rounding.
    pub span_s: f64,
}

impl CriticalPath {
    /// Number of message hops on the path.
    pub fn hops(&self) -> usize {
        self.segments.len()
    }

    /// `Σ stage_s + compute_s` — the telescoping check's left-hand side.
    pub fn accounted_s(&self) -> f64 {
        self.stage_s.iter().sum::<f64>() + self.compute_s
    }
}

/// Extracts every closed flow from a trace as a [`Segment`], sorted by
/// `(close, open, flow)` so downstream analysis is deterministic.
pub fn segments(trace: &ParsedTrace) -> Vec<Segment> {
    let mut segs: Vec<Segment> = trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::FlowRecv {
                flow,
                channel,
                src,
                l3_s,
                l2_s,
                l1_s,
                l0_s,
                net_s,
                drain_s,
                e2e_s,
            } => Some(Segment {
                flow,
                channel,
                src_node: trace.node_of(src),
                dst_node: trace.node_of(e.pe),
                open: e.ts - e2e_s,
                close: e.ts,
                stages: [l3_s, l2_s, l1_s, l0_s, net_s, drain_s],
            }),
            _ => None,
        })
        .collect();
    segs.sort_by(|a, b| {
        a.close
            .total_cmp(&b.close)
            .then(a.open.total_cmp(&b.open))
            .then(a.flow.cmp(&b.flow))
    });
    segs
}

/// Finds the chain with the largest span via DP over close-sorted
/// segments: `B` may follow `A` when `A.close ≤ B.open` and `A` landed
/// on the node that opened `B`. `None` when the trace closed no flows.
pub fn critical_path(segs: &[Segment]) -> Option<CriticalPath> {
    if segs.is_empty() {
        return None;
    }
    // earliest[i]: start time of the longest chain ending at segment i;
    // prev[i]: its predecessor. O(n²) over the *sampled* flows (1-in-64
    // packets by default), which stays small even for long runs.
    let n = segs.len();
    let mut earliest: Vec<f64> = segs.iter().map(|s| s.open).collect();
    let mut prev: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        for j in 0..i {
            if segs[j].close <= segs[i].open
                && segs[j].dst_node == segs[i].src_node
                && earliest[j] < earliest[i]
            {
                earliest[i] = earliest[j];
                prev[i] = Some(j);
            }
        }
    }
    // Widest span wins; ties break toward the earlier close (stable,
    // since segments are close-sorted).
    let mut best = 0;
    for i in 1..n {
        if segs[i].close - earliest[i] > segs[best].close - earliest[best] {
            best = i;
        }
    }
    let mut chain = Vec::new();
    let mut cur = Some(best);
    while let Some(i) = cur {
        chain.push(segs[i]);
        cur = prev[i];
    }
    chain.reverse();

    let mut stage_s = [0.0; 6];
    let mut compute_s = 0.0;
    for (i, s) in chain.iter().enumerate() {
        for (acc, v) in stage_s.iter_mut().zip(s.stages) {
            *acc += v;
        }
        if i > 0 {
            compute_s += s.open - chain[i - 1].close;
        }
    }
    let span_s = chain.last().unwrap().close - chain[0].open;
    Some(CriticalPath { segments: chain, stage_s, compute_s, span_s })
}

/// Stage names in [`Segment::stages`] order, shared with the conveyor's
/// metrics keys (`flow.stage_s.<name>`).
pub fn stage_names() -> [&'static str; 6] {
    let mut out = [""; 6];
    for (slot, s) in out.iter_mut().zip(Stage::ALL) {
        *slot = s.name();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dakc_sim::telemetry::Event;

    fn recv(ts: f64, pe: u32, src: u32, flow: u64, e2e: f64) -> Event {
        // Split e2e across the stages unevenly so per-stage sums are
        // distinguishable: half net, the rest spread over the others.
        let part = e2e / 10.0;
        Event {
            ts,
            pe,
            kind: EventKind::FlowRecv {
                flow,
                channel: 0,
                src,
                l3_s: part,
                l2_s: part,
                l1_s: part,
                l0_s: part,
                net_s: 5.0 * part,
                drain_s: part,
                e2e_s: e2e,
            },
        }
    }

    fn trace(events: Vec<Event>) -> ParsedTrace {
        ParsedTrace { events, ..ParsedTrace::default() }
    }

    #[test]
    fn empty_trace_has_no_path() {
        assert!(critical_path(&segments(&trace(vec![]))).is_none());
    }

    #[test]
    fn single_flow_path_is_its_own_span() {
        let t = trace(vec![recv(1.0, 1, 0, 7, 0.4)]);
        let p = critical_path(&segments(&t)).unwrap();
        assert_eq!(p.hops(), 1);
        assert!((p.span_s - 0.4).abs() < 1e-12);
        assert!((p.accounted_s() - p.span_s).abs() < 1e-9);
        assert_eq!(p.compute_s, 0.0);
    }

    #[test]
    fn chains_relay_through_matching_node_and_telescopes() {
        // Flow 1: node0 → node1 over [0.1, 0.5]. Flow 2: node1 → node2
        // over [0.7, 1.0] (node1 computed for 0.2 s between them).
        // Flow 3: node0 → node2 over [0.0, 0.3] — wider start but no
        // chain; the two-hop chain spans 0.9 s and must win.
        let t = trace(vec![
            recv(0.3, 2, 0, 3, 0.3),
            recv(0.5, 1, 0, 1, 0.4),
            recv(1.0, 2, 1, 2, 0.3),
        ]);
        let p = critical_path(&segments(&t)).unwrap();
        assert_eq!(p.hops(), 2);
        assert_eq!(p.segments[0].flow, 1);
        assert_eq!(p.segments[1].flow, 2);
        assert!((p.span_s - 0.9).abs() < 1e-12);
        assert!((p.compute_s - 0.2).abs() < 1e-12);
        // Telescoping: stages + compute == span exactly.
        assert!((p.accounted_s() - p.span_s).abs() < 1e-9, "{p:?}");
        // Net got half of each flow's e2e by construction.
        assert!((p.stage_s[4] - 0.35).abs() < 1e-12);
    }

    #[test]
    fn does_not_chain_through_mismatched_nodes() {
        // Second flow originates on node 2, but the first landed on
        // node 1 — no edge, so the best chain is a single hop.
        let t = trace(vec![recv(0.5, 1, 0, 1, 0.4), recv(1.0, 3, 2, 2, 0.3)]);
        let p = critical_path(&segments(&t)).unwrap();
        assert_eq!(p.hops(), 1);
    }

    #[test]
    fn stage_names_match_conveyor_order() {
        assert_eq!(stage_names(), ["l3", "l2", "l1", "l0", "net", "drain"]);
    }
}
