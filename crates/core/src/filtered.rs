//! Singleton-skipping counting — the DFCounter/Squeakr idea the paper's
//! related work surveys (§II-A [35], [25]), as an extension of the
//! threaded engine.
//!
//! Sequencing errors make most *distinct* k-mers singletons (count 1),
//! though they carry little of the total mass. Assemblers that only need
//! k-mers with count ≥ 2 can skip them: the first occurrence of each k-mer
//! goes into a Bloom filter; only k-mers whose occurrence *repeats* are
//! routed to owners and counted exactly. The counted value for a k-mer
//! with true multiplicity `c ≥ 2` is `c − 1` (its first sighting fed the
//! filter), so the engine reports `count + 1` for surviving k-mers.
//!
//! Guarantees: never a false negative (every k-mer with count ≥ 2 is
//! reported); Bloom false positives can let a few true singletons through
//! (reported with their exact count 1) — the classic one-sided error of
//! this family. Memory saved: the per-owner arrays never see singleton
//! mass.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use dakc_io::ReadSet;
use dakc_kmer::{
    bloom::BloomFilter, kmers_of_read, owner_pe, CanonicalMode, KmerCount, KmerWord,
};
use dakc_sort::{accumulate, hybrid_sort, RadixKey};

/// Result of a filtered run.
#[derive(Debug, Clone)]
pub struct FilteredRun<W> {
    /// Histogram of k-mers that repeated (count ≥ 2, plus rare Bloom
    /// false-positive singletons), sorted by k-mer.
    pub counts: Vec<KmerCount<W>>,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// k-mer occurrences skipped as first sightings.
    pub skipped_first_sightings: u64,
}

/// Counts only repeating k-mers using per-thread Bloom filters.
///
/// `expected_distinct` sizes the filters (a per-thread share is used);
/// `fp_rate` is the per-filter false-positive target.
pub fn count_kmers_filtered<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    canonical: CanonicalMode,
    threads: usize,
    expected_distinct: usize,
    fp_rate: f64,
) -> FilteredRun<W> {
    assert!(threads >= 1);
    assert!((1..=W::MAX_K).contains(&k));
    let start = Instant::now();

    // Each worker publishes (its partition's counts, singletons skipped).
    type WorkerOut<W> = Mutex<Option<(Vec<KmerCount<W>>, u64)>>;
    let inboxes: Vec<Mutex<Vec<W>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let outputs: Vec<WorkerOut<W>> = (0..threads).map(|_| Mutex::new(None)).collect();
    let barrier = std::sync::Barrier::new(threads);

    std::thread::scope(|s| {
        for t in 0..threads {
            let inboxes = &inboxes;
            let outputs = &outputs;
            let barrier = &barrier;
            s.spawn(move || {
                // NOTE: per-thread filters see only this thread's reads, so
                // a k-mer whose two occurrences land on different threads
                // would be missed — unless filtering happens *after* owner
                // routing. We therefore filter on the OWNER side: parse,
                // route every occurrence, and let the owner's filter decide.
                let mut route: Vec<Vec<W>> = vec![Vec::new(); threads];
                for i in reads.pe_range(t, threads) {
                    for w in kmers_of_read::<W>(reads.get(i), k, canonical) {
                        let owner = owner_pe(w, threads);
                        route[owner].push(w);
                        if route[owner].len() >= 1024 {
                            inboxes[owner].lock().unwrap().append(&mut route[owner]);
                        }
                    }
                }
                for (owner, buf) in route.iter_mut().enumerate() {
                    if !buf.is_empty() {
                        inboxes[owner].lock().unwrap().append(buf);
                    }
                }
                barrier.wait();

                // Owner side: filter + exact count of survivors.
                let mine: Vec<W> = std::mem::take(&mut *inboxes[t].lock().unwrap());
                let mut filter =
                    BloomFilter::with_rate(expected_distinct / threads + 16, fp_rate);
                let mut survivors: Vec<W> = Vec::new();
                let mut skipped = 0u64;
                for w in mine {
                    if filter.insert(w) {
                        survivors.push(w);
                    } else {
                        skipped += 1;
                    }
                }
                hybrid_sort(&mut survivors);
                let counts: Vec<KmerCount<W>> = accumulate(&survivors)
                    .into_iter()
                    // The first sighting fed the filter: report c + 1.
                    .map(|(w, c)| KmerCount::new(w, c.saturating_add(1)))
                    .collect();
                *outputs[t].lock().unwrap() = Some((counts, skipped));
            });
        }
    });

    let mut counts: Vec<KmerCount<W>> = Vec::new();
    let mut skipped_first_sightings = 0u64;
    for o in &outputs {
        let (c, s) = o.lock().unwrap().take().expect("published");
        counts.extend(c);
        skipped_first_sightings += s;
    }
    counts.sort_unstable_by_key(|c| c.kmer);

    FilteredRun {
        counts,
        elapsed: start.elapsed(),
        skipped_first_sightings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn reads(n: usize, seed: u64, err: f64) -> ReadSet {
        use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
        let g = generate_genome(&GenomeSpec { bases: 3_000, repeats: None }, seed);
        simulate_reads(
            &g,
            &ReadSimConfig { read_len: 100, num_reads: n, error_rate: err, both_strands: false },
            seed,
        )
    }

    fn exact(rs: &ReadSet, k: usize) -> BTreeMap<u64, u32> {
        let mut h = BTreeMap::new();
        for r in rs.iter() {
            for w in kmers_of_read::<u64>(r, k, CanonicalMode::Forward) {
                *h.entry(w).or_default() += 1;
            }
        }
        h
    }

    #[test]
    fn repeats_are_exact_and_singletons_skipped() {
        let rs = reads(400, 1, 0.01);
        let k = 21;
        let truth = exact(&rs, k);
        let run = count_kmers_filtered::<u64>(&rs, k, CanonicalMode::Forward, 4, 64_000, 0.01);
        let got: BTreeMap<u64, u32> = run.counts.iter().map(|c| (c.kmer, c.count)).collect();

        // Every true repeat must be present with its exact count.
        for (&w, &c) in truth.iter().filter(|&(_, &c)| c >= 2) {
            assert_eq!(got.get(&w), Some(&c), "repeat k-mer lost or miscounted");
        }
        // Reported singletons are only Bloom false positives: few.
        let reported_singletons = got.values().filter(|&&c| c == 1).count();
        let true_singletons = truth.values().filter(|&&c| c == 1).count();
        assert!(
            reported_singletons <= true_singletons / 10 + 8,
            "too many singletons leaked: {reported_singletons} of {true_singletons}"
        );
        // Everything reported exists in the truth with the same count.
        for (w, c) in &got {
            assert_eq!(truth.get(w), Some(c));
        }
        assert!(run.skipped_first_sightings > 0);
    }

    #[test]
    fn error_free_data_loses_nothing() {
        let rs = reads(200, 2, 0.0);
        let k = 15;
        let truth = exact(&rs, k);
        let run = count_kmers_filtered::<u64>(&rs, k, CanonicalMode::Forward, 3, 16_000, 0.001);
        // At ~13x coverage almost every genomic k-mer repeats.
        let repeats = truth.values().filter(|&&c| c >= 2).count();
        let got = run.counts.len();
        assert!(got >= repeats, "all repeats must survive: {got} < {repeats}");
    }

    #[test]
    fn single_thread_works() {
        let rs = reads(100, 3, 0.02);
        let run = count_kmers_filtered::<u64>(&rs, 17, CanonicalMode::Forward, 1, 20_000, 0.01);
        assert!(!run.counts.is_empty());
    }
}
