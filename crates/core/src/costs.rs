//! Virtual-time cost charging shared by every engine that runs in the
//! simulator.
//!
//! These helpers mirror the paper's §V model term-for-term so that the
//! model-validation experiments (Figs 3–5) compare like with like:
//!
//! * parsing charges one integer op per k-mer (Eq 9) plus the streaming
//!   traffic of reading the input and writing the k-mer array (Eq 10);
//! * radix sorting charges one op per key byte (Eq 12) and re-streams the
//!   array once per byte-pass (Eq 13);
//! * accumulation is one pass of reads and comparisons.
//!
//! The *communication* side needs no helpers: bytes cross the simulated
//! NIC through real `send`s, so Eq 11's term is measured, not charged.

use dakc_conveyors::Fabric;

/// Charges the parse-side compute of generating `kmers` k-mers (Eq 9).
pub fn charge_parse<F: Fabric>(ctx: &mut F, kmers: u64) {
    ctx.charge_ops(kmers);
}

/// Charges the streaming memory traffic of reading `input_bytes` of reads
/// and writing `kmers` packed words of `word_bytes` (Eq 10's two miss
/// terms).
pub fn charge_parse_traffic<F: Fabric>(ctx: &mut F, input_bytes: u64, kmers: u64, word_bytes: u64) {
    ctx.charge_mem(input_bytes + kmers * word_bytes);
}

/// Charges the super-k-mer parse path (`--superkmer`): the rolling
/// minimizer scan is O(1)/base (deque ops amortize), and the producer
/// streams the read once while writing only the packed span bytes — not a
/// full word per k-mer. The wire savings are measured, not charged (spans
/// cross the simulated NIC as real `send`s); this covers the producer-
/// side memory traffic asymmetry vs [`charge_parse_traffic`].
pub fn charge_span_traffic<F: Fabric>(ctx: &mut F, input_bytes: u64, span_bytes: u64) {
    ctx.charge_mem(input_bytes + span_bytes);
}

/// Charges the owner-side expansion of received spans back into `kmers`
/// words of `word_bytes`: one op and one word write per k-mer.
pub fn charge_span_expand<F: Fabric>(ctx: &mut F, kmers: u64, word_bytes: u64) {
    ctx.charge_ops(kmers);
    ctx.charge_mem(kmers * word_bytes);
}

/// Charges an LSD radix sort of `n` keys of `key_bytes` bytes: one op per
/// key byte (Eq 12) and one full array stream per byte-pass (Eq 13's
/// worst case). This is the *model's* assumption; engines that actually
/// run the MSD hybrid should use [`charge_hybrid_sort`].
pub fn charge_radix_sort<F: Fabric>(ctx: &mut F, n: u64, key_bytes: u64) {
    ctx.charge_ops(n * key_bytes);
    ctx.charge_mem(n * key_bytes * key_bytes);
}

/// Charges the ska-style MSD hybrid sort the engines actually execute:
/// Eq 12's compute, but memory traffic for only as many scatter levels as
/// it takes for partitions to become cache-resident (each level reads and
/// writes the array once). This is why the paper's *measured* phase 2
/// lands below the Eq 13 worst case (§V-A) — partitions shrink 256× per
/// level and stop missing.
pub fn charge_hybrid_sort<F: Fabric>(ctx: &mut F, n: u64, key_bytes: u64) {
    ctx.charge_ops(n * key_bytes);
    let bytes = n * key_bytes;
    let share = ctx.cache_share_bytes();
    let mut levels = 1u64;
    let mut partition = bytes;
    while partition > share.max(1) && levels < key_bytes {
        partition /= 256;
        levels += 1;
    }
    ctx.charge_mem(2 * bytes * levels);
}

/// Charges the accumulate sweep over `n` sorted records of `rec_bytes`.
pub fn charge_accumulate<F: Fabric>(ctx: &mut F, n: u64, rec_bytes: u64) {
    ctx.charge_ops(n);
    ctx.charge_mem(n * rec_bytes);
}

/// Charges a comparison sort (the quicksort-based original PakMan
/// baseline): ~12 integer-op equivalents per comparison across `log n`
/// partition levels — ≈2.4 ns per compare-exchange at a Phoenix core's
/// ops rate, the low end of measured quicksort throughputs (2–5 ns per
/// element per level once ~50% of random-pivot branches mispredict) —
/// and — like [`charge_hybrid_sort`]
/// — DRAM traffic only for the partition levels that do not yet fit this
/// PE's cache share: each such level reads *and* swap-writes the
/// partition. Quicksort halves partitions per level (radix divides by
/// 256), so it pays ~8× more out-of-cache levels — the cache-behaviour
/// gap behind Fig 6's ≈2× kernel difference.
pub fn charge_comparison_sort<F: Fabric>(ctx: &mut F, n: u64, rec_bytes: u64) {
    if n > 1 {
        let logn = 64 - (n - 1).leading_zeros() as u64;
        ctx.charge_ops(12 * n * logn);
        let bytes = n * rec_bytes;
        let share = ctx.cache_share_bytes();
        let mut dram_levels = 1u64; // the initial read is always a stream
        let mut partition = bytes;
        while partition > share.max(1) && dram_levels < logn {
            partition /= 2;
            dram_levels += 1;
        }
        ctx.charge_mem(2 * bytes * dram_levels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dakc_sim::{Ctx, MachineConfig, Program, Simulator, Step};

    struct Probe {
        f: fn(&mut Ctx<'_>),
        done: bool,
    }
    impl Program for Probe {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            if !self.done {
                (self.f)(ctx);
                self.done = true;
            }
            Step::Done
        }
    }

    fn run_one(f: fn(&mut Ctx<'_>)) -> dakc_sim::SimReport {
        Simulator::new(MachineConfig::test_machine(1, 1))
            .run(vec![Box::new(Probe { f, done: false })])
            .unwrap()
    }

    #[test]
    fn radix_charges_scale_with_key_width() {
        let r64 = run_one(|ctx| charge_radix_sort(ctx, 1000, 8));
        let r128 = run_one(|ctx| charge_radix_sort(ctx, 1000, 16));
        assert!(r128.pes[0].compute_s > r64.pes[0].compute_s * 1.9);
        assert!(r128.pes[0].intranode_s > r64.pes[0].intranode_s * 3.9);
    }

    #[test]
    fn comparison_sort_costs_more_than_radix_for_large_n() {
        // log2(1M) = 20 > 8 bytes of radix passes.
        let rq = run_one(|ctx| charge_comparison_sort(ctx, 1 << 20, 8));
        let rr = run_one(|ctx| charge_radix_sort(ctx, 1 << 20, 8));
        assert!(rq.pes[0].compute_s > rr.pes[0].compute_s);
    }

    #[test]
    fn parse_traffic_includes_both_streams() {
        let r = run_one(|ctx| charge_parse_traffic(ctx, 1_000_000, 1_000, 8));
        // 1,000,000 + 8,000 bytes at 1 GB/s (test machine, 1 PE).
        assert!((r.pes[0].intranode_s - 1.008e-3).abs() < 1e-6);
    }

    #[test]
    fn tiny_sorts_charge_nothing_pathological() {
        let r = run_one(|ctx| charge_comparison_sort(ctx, 1, 8));
        assert_eq!(r.pes[0].ops, 0);
    }
}
