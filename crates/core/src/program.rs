//! The per-PE DAKC program for the simulator engine: Algorithm 3 as a
//! resumable state machine.
//!
//! ```text
//! Parse    — roll k-mers out of this PE's read range, AsyncAdd each,
//!            poll/progress between batches (fine-grained asynchrony).
//! Drain    — everything flushed; sit in the quiescent GLOBAL BARRIER,
//!            waking to process (and relay) late arrivals.
//! Count    — phase 2: sort the received array, accumulate, merge the
//!            heavy-hitter pairs; publish this PE's slice of the result.
//! ```
//!
//! The paper's three global synchronization points map to: one implicit
//! start barrier (simulation start), the quiescent barrier between the
//! phases, and simulation completion.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use dakc_io::ReadSet;
use dakc_kmer::{
    counts::merge_sorted_counts, for_each_span, kmers_of_read, packed_span_bytes, CanonicalMode,
    KmerCount, KmerWord,
};
use dakc_sim::{Ctx, Program, Step};
use dakc_sort::{accumulate, accumulate_weighted, hybrid_sort, lsd_radix_sort_by, RadixKey};

use crate::aggregate::{AggStats, Aggregator, ReceiveStore};
use crate::config::DakcConfig;
use crate::costs;

/// Everything a PE publishes when it finishes.
#[derive(Debug, Clone)]
pub struct PeOutput<W> {
    /// This PE's owner-partition of the global histogram, sorted.
    pub counts: Vec<KmerCount<W>>,
    /// Sender-side aggregation counters.
    pub agg: AggStats,
    /// Conveyor counters.
    pub conv: dakc_conveyors::ConvStats,
    /// k-mer occurrences this PE received (owner-side load, for the load
    /// imbalance analysis).
    pub received_occurrences: u64,
    /// Records this PE received (plain k-mers + heavy pairs) — the actual
    /// data volume landing on the owner, which is what L3 rebalances.
    pub received_records: u64,
}

/// Shared collection slot for PE outputs.
pub type OutputSink<W> = Rc<RefCell<Vec<Option<PeOutput<W>>>>>;

enum State {
    Parse,
    Drain,
    Count,
    Finished,
}

/// One PE's DAKC program.
pub struct DakcPeProgram<W: KmerWord> {
    cfg: DakcConfig,
    reads: Arc<ReadSet>,
    range: std::ops::Range<usize>,
    cursor: usize,
    agg: Option<Aggregator<W>>,
    store: ReceiveStore<W>,
    sink: OutputSink<W>,
    state: State,
}

impl<W: KmerWord + RadixKey> DakcPeProgram<W> {
    /// Creates the program for one PE. `range` is the PE's slice of read
    /// indices; `sink` collects the result.
    pub fn new(
        cfg: DakcConfig,
        reads: Arc<ReadSet>,
        range: std::ops::Range<usize>,
        sink: OutputSink<W>,
    ) -> Self {
        let cursor = range.start;
        Self {
            cfg,
            reads,
            range,
            cursor,
            agg: None,
            store: ReceiveStore::default(),
            sink,
            state: State::Parse,
        }
    }

    /// Parses up to `batch_reads` reads, AsyncAdd-ing every k-mer.
    fn parse_batch(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let agg = self.agg.as_mut().expect("aggregator created");
        let end = (self.cursor + self.cfg.batch_reads).min(self.range.end);
        let mut kmers = 0u64;
        let mut bases = 0u64;
        if self.cfg.superkmer {
            // L2.5: decompose into minimizer spans and route whole spans.
            let (k, m) = (self.cfg.k, self.cfg.minimizer_len);
            let canonical = self.cfg.canonical == CanonicalMode::Canonical;
            let mut span_bytes = 0u64;
            for i in self.cursor..end {
                let read = self.reads.get(i);
                bases += read.len() as u64;
                for_each_span(read, k, m, canonical, |minimizer, span| {
                    kmers += (span.len() + 1 - k) as u64;
                    span_bytes += packed_span_bytes(span.len()) as u64;
                    agg.async_add_span(ctx, minimizer, span);
                });
            }
            self.cursor = end;
            costs::charge_parse(ctx, kmers);
            costs::charge_span_traffic(ctx, bases, span_bytes);
            return self.cursor == self.range.end;
        }
        for i in self.cursor..end {
            let read = self.reads.get(i);
            bases += read.len() as u64;
            for w in kmers_of_read::<W>(read, self.cfg.k, self.cfg.canonical) {
                kmers += 1;
                agg.async_add(ctx, w);
            }
        }
        self.cursor = end;
        costs::charge_parse(ctx, kmers);
        costs::charge_parse_traffic(ctx, bases, kmers, self.cfg.kmer_bytes::<W>() as u64);
        self.cursor == self.range.end
    }

    /// Phase 2: sort + accumulate + merge; publishes the output.
    fn count_phase(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_phase(1);
        let agg = self.agg.as_mut().expect("aggregator created");
        let word_bytes = self.cfg.kmer_bytes::<W>() as u64;
        let store = std::mem::take(&mut self.store);
        let received_occurrences = store.total_occurrences();
        let received_records = (store.plain.len() + store.pairs.len()) as u64;
        let ReceiveStore { mut plain, mut pairs, .. } = store;

        // Sort + accumulate the plain stream (the bulk of the data).
        ctx.mem_alloc(plain.len() as u64 * word_bytes);
        costs::charge_hybrid_sort(ctx, plain.len() as u64, word_bytes);
        hybrid_sort(&mut plain);
        costs::charge_accumulate(ctx, plain.len() as u64, word_bytes);
        let plain_counts: Vec<KmerCount<W>> = accumulate(&plain)
            .into_iter()
            .map(|(w, c)| KmerCount::new(w, c))
            .collect();

        // Sort + accumulate the heavy pairs (small).
        costs::charge_hybrid_sort(ctx, pairs.len() as u64, word_bytes + 4);
        lsd_radix_sort_by(&mut pairs, |p| p.0);
        costs::charge_accumulate(ctx, pairs.len() as u64, word_bytes + 4);
        let pair_counts: Vec<KmerCount<W>> = accumulate_weighted(&pairs)
            .into_iter()
            .map(|(w, c)| KmerCount::new(w, c))
            .collect();

        let counts = merge_sorted_counts(&plain_counts, &pair_counts);
        // Held, not freed: all PEs sort concurrently on a real node, so
        // the OOM accounting must see the summed peak (see the same note
        // in the BSP baseline).

        let out = PeOutput {
            counts,
            agg: agg.stats(),
            conv: agg.conveyor_stats(),
            received_occurrences,
            received_records,
        };
        agg.release(ctx);
        self.sink.borrow_mut()[ctx.pe()] = Some(out);
    }
}

impl<W: KmerWord + RadixKey> Program for DakcPeProgram<W> {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        match self.state {
            State::Parse => {
                if self.agg.is_none() {
                    ctx.set_phase(0);
                    self.agg = Some(Aggregator::new(self.cfg.clone(), ctx));
                    return Step::Yield;
                }
                let done = self.parse_batch(ctx);
                // Fine-grained asynchrony: service the network between
                // batches, exactly like the conveyor progress loop.
                let agg = self.agg.as_mut().expect("created");
                agg.progress(ctx, &mut self.store);
                if let Some(e) = agg.take_decode_error() {
                    // The simulator's in-process wire cannot corrupt.
                    panic!("span decode failed on a lossless wire: {e}");
                }
                if done {
                    self.agg.as_mut().expect("created").flush(ctx);
                    self.state = State::Drain;
                    Step::Barrier
                } else {
                    Step::Yield
                }
            }
            State::Drain => {
                let agg = self.agg.as_mut().expect("created");
                let processed = agg.progress(ctx, &mut self.store);
                if let Some(e) = agg.take_decode_error() {
                    panic!("span decode failed on a lossless wire: {e}");
                }
                if processed > 0 || ctx.has_ready() {
                    Step::Barrier
                } else {
                    // The quiescent barrier released us: phase 2.
                    self.state = State::Count;
                    Step::Yield
                }
            }
            State::Count => {
                self.count_phase(ctx);
                self.state = State::Finished;
                Step::Done
            }
            State::Finished => Step::Done,
        }
    }
}
