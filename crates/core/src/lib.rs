//! # dakc — Distributed Asynchronous k-mer Counting
//!
//! The paper's primary contribution: an FA-BSP k-mer counter that replaces
//! the bulk-synchronous Many-To-Many exchanges of PakMan/HySortK with
//! fine-grained one-sided messages behind a four-layer aggregation stack
//! (Algorithm 3 + Algorithm 4).
//!
//! Two engines expose the same algorithm:
//!
//! * [`engine::count_kmers_sim`] — runs on the [`dakc_sim`] virtual-time
//!   cluster (any node count, Table IV cost model); this is what every
//!   distributed-memory experiment uses.
//! * [`threaded::count_kmers_threaded`] — runs on real OS threads with
//!   in-memory delivery, the configuration the paper benchmarks on single
//!   shared-memory nodes (Fig 9), where the runtime turns remote messages
//!   into `memcpy`.
//!
//! Layer map (paper §IV):
//!
//! ```text
//!  AsyncAdd(kmer)
//!    └─ L3   heavy-hitter pre-accumulation   (dakc::aggregate)
//!        └─ L2   C2-k-mer packet packing      (dakc::aggregate)
//!            └─ L1   actor staging            (dakc_conveyors::actor)
//!                └─ L0   routed PUT buffers   (dakc_conveyors::conveyor)
//! ```
//!
//! A quickstart:
//!
//! ```
//! use dakc::{engine::count_kmers_sim, DakcConfig};
//! use dakc_io::ReadSet;
//! use dakc_sim::MachineConfig;
//!
//! let mut reads = ReadSet::new();
//! reads.push(b"ACGTACGTACGTACGT");
//! let cfg = DakcConfig::scaled_defaults(5);
//! let machine = MachineConfig::test_machine(2, 2);
//! let out = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
//! assert_eq!(out.counts.iter().map(|c| c.count as usize).sum::<usize>(), 12);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod aggregate;
pub mod config;
pub mod costs;
pub mod distributed;
pub mod engine;
pub mod filtered;
pub mod overlap;
pub mod program;
pub mod threaded;

pub use aggregate::{
    decode_packet, encode_heavy_packet, encode_normal_packet, Aggregator, ReceiveStore,
};
pub use config::{DakcConfig, DEFAULT_MINIMIZER_LEN};
pub use distributed::{
    count_kmers_loopback, count_kmers_loopback_opts, count_partition, run_rank, run_rank_opts,
    NetRun, Partition, RunOpts,
};
pub use engine::{count_kmers_sim, count_kmers_sim_traced, DakcRun};
pub use filtered::{count_kmers_filtered, FilteredRun};
pub use overlap::{count_kmers_sim_overlap, OverlapRun, SortedRunStore};
pub use program::DakcPeProgram;
pub use threaded::{
    count_kmers_threaded, count_kmers_threaded_opts, count_kmers_threaded_traced, ThreadedOpts,
    ThreadedRun, DEFAULT_ROUTE_BATCH,
};
