//! Phase-overlapped DAKC — the paper's first future-work item (§VII):
//!
//! > "Our current sorting-based approach still involves an explicit
//! > barrier between phases 1 and 2. This synchronization could be
//! > eliminated, thereby allowing the phases to overlap, by using a
//! > distributed sorted-set data structure that supports asynchronous
//! > queries and updates."
//!
//! [`SortedRunStore`] is that structure's owner-side half: arriving k-mers
//! are absorbed into small sorted-and-accumulated *runs* while phase 1 is
//! still in flight, so the bulk of the sorting work happens during the
//! communication it used to wait behind. After quiescence (the barrier now
//! only detects termination — no sorting hides behind it) the runs are
//! k-way merged in a single pass.
//!
//! [`count_kmers_sim_overlap`] is the resulting engine; the
//! `ext_overlap_ablation` bench compares it against stock DAKC.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::sync::Arc;

use dakc_io::ReadSet;
use dakc_kmer::{kmers_of_read, KmerCount, KmerWord};
use dakc_sim::{Ctx, MachineConfig, Program, SimError, SimReport, Simulator, Step};
use dakc_sort::{accumulate, accumulate_weighted, hybrid_sort, lsd_radix_sort_by, RadixKey};

use crate::aggregate::{Aggregator, ReceiveStore};
use crate::config::DakcConfig;
use crate::costs;

/// Owner-side incremental store: absorbs unordered deliveries into sorted,
/// accumulated runs; one merge pass finalizes.
#[derive(Debug)]
pub struct SortedRunStore<W> {
    pending: Vec<W>,
    pending_pairs: Vec<(W, u32)>,
    runs: Vec<Vec<KmerCount<W>>>,
    /// Pending elements that trigger a run flush. Sized so a run sorts
    /// cache-resident.
    run_threshold: usize,
}

impl<W: KmerWord + RadixKey> SortedRunStore<W> {
    /// Creates a store; `run_threshold` is the run granularity.
    pub fn new(run_threshold: usize) -> Self {
        assert!(run_threshold >= 2);
        Self {
            pending: Vec::new(),
            pending_pairs: Vec::new(),
            runs: Vec::new(),
            run_threshold,
        }
    }

    /// Number of closed runs so far.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total records currently held (pending + in runs).
    pub fn records(&self) -> usize {
        self.pending.len()
            + self.pending_pairs.len()
            + self.runs.iter().map(|r| r.len()).sum::<usize>()
    }

    /// Absorbs one delivered plain k-mer.
    pub fn push_plain(&mut self, ctx: &mut Ctx<'_>, w: W) {
        self.pending.push(w);
        if self.pending.len() + self.pending_pairs.len() >= self.run_threshold {
            self.flush_run(ctx);
        }
    }

    /// Absorbs one delivered pre-accumulated pair.
    pub fn push_pair(&mut self, ctx: &mut Ctx<'_>, w: W, c: u32) {
        self.pending_pairs.push((w, c));
        if self.pending.len() + self.pending_pairs.len() >= self.run_threshold {
            self.flush_run(ctx);
        }
    }

    /// Sorts and accumulates the pending batch into a closed run. This is
    /// the work that overlaps with communication.
    pub fn flush_run(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending.is_empty() && self.pending_pairs.is_empty() {
            return;
        }
        let wb = (W::BITS / 8) as u64;
        let mut plain = std::mem::take(&mut self.pending);
        costs::charge_hybrid_sort(ctx, plain.len() as u64, wb);
        hybrid_sort(&mut plain);
        costs::charge_accumulate(ctx, plain.len() as u64, wb);
        let plain_counts: Vec<KmerCount<W>> = accumulate(&plain)
            .into_iter()
            .map(|(w, c)| KmerCount::new(w, c))
            .collect();

        let mut pairs = std::mem::take(&mut self.pending_pairs);
        costs::charge_hybrid_sort(ctx, pairs.len() as u64, wb + 4);
        lsd_radix_sort_by(&mut pairs, |p| p.0);
        let pair_counts: Vec<KmerCount<W>> = accumulate_weighted(&pairs)
            .into_iter()
            .map(|(w, c)| KmerCount::new(w, c))
            .collect();

        let run = dakc_kmer::counts::merge_sorted_counts(&plain_counts, &pair_counts);
        if !run.is_empty() {
            self.runs.push(run);
        }
    }

    /// Final k-way merge of all runs: one streaming pass over the data
    /// (the only work left after quiescence).
    pub fn finalize(mut self, ctx: &mut Ctx<'_>) -> Vec<KmerCount<W>> {
        self.flush_run(ctx);
        let runs = std::mem::take(&mut self.runs);
        let total: usize = runs.iter().map(|r| r.len()).sum();
        let wb = (W::BITS / 8) as u64;
        // Merge cost: read every record once through a log(runs)-deep heap
        // and write the output stream.
        let log_runs = (runs.len().max(2) as f64).log2().ceil() as u64;
        ctx.charge_ops(total as u64 * (log_runs + 1));
        ctx.charge_mem(total as u64 * (wb + 4) * 2);
        kway_merge(runs)
    }
}

/// Heap-based k-way merge of sorted count runs, summing equal k-mers.
fn kway_merge<W: KmerWord>(runs: Vec<Vec<KmerCount<W>>>) -> Vec<KmerCount<W>> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out: Vec<KmerCount<W>> = Vec::with_capacity(total);
    let mut heads: BinaryHeap<Reverse<(W, usize)>> = BinaryHeap::new();
    let mut cursors: Vec<std::iter::Peekable<std::vec::IntoIter<KmerCount<W>>>> =
        runs.into_iter().map(|r| r.into_iter().peekable()).collect();
    for (i, c) in cursors.iter_mut().enumerate() {
        if let Some(kc) = c.peek() {
            heads.push(Reverse((kc.kmer, i)));
        }
    }
    while let Some(Reverse((kmer, i))) = heads.pop() {
        let kc = cursors[i].next().expect("peeked entry exists");
        debug_assert_eq!(kc.kmer, kmer);
        match out.last_mut() {
            Some(last) if last.kmer == kmer => last.count = last.count.saturating_add(kc.count),
            _ => out.push(kc),
        }
        if let Some(next) = cursors[i].peek() {
            heads.push(Reverse((next.kmer, i)));
        }
    }
    out
}

type Sink<W> = Rc<RefCell<Vec<Option<Vec<KmerCount<W>>>>>>;

enum St {
    Parse,
    Drain,
    Finalize,
    Done,
}

/// The phase-overlapped per-PE program: like [`crate::DakcPeProgram`] but
/// deliveries go straight into a [`SortedRunStore`].
struct OverlapPeProgram<W: KmerWord> {
    cfg: DakcConfig,
    reads: Arc<ReadSet>,
    range: std::ops::Range<usize>,
    cursor: usize,
    agg: Option<Aggregator<W>>,
    store: Option<SortedRunStore<W>>,
    sink: Sink<W>,
    st: St,
}

impl<W: KmerWord + RadixKey> OverlapPeProgram<W> {
    /// Drains arrived packets into the run store. Returns records
    /// processed.
    fn absorb(&mut self, ctx: &mut Ctx<'_>) -> u64 {
        let agg = self.agg.as_mut().expect("created");
        let mut tmp = ReceiveStore::<W>::default();
        let processed = agg.progress(ctx, &mut tmp);
        let store = self.store.as_mut().expect("created");
        for w in tmp.plain {
            store.push_plain(ctx, w);
        }
        for (w, c) in tmp.pairs {
            store.push_pair(ctx, w, c);
        }
        processed
    }
}

impl<W: KmerWord + RadixKey> Program for OverlapPeProgram<W> {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        match self.st {
            St::Parse => {
                if self.agg.is_none() {
                    ctx.set_phase(0);
                    self.agg = Some(Aggregator::new(self.cfg.clone(), ctx));
                    // Runs small enough to sort cache-resident, but small
                    // enough in absolute terms that runs actually close
                    // *during* phase 1 — that closing is the overlap.
                    let share = ctx.machine().cache_bytes / ctx.machine().pes_per_node;
                    let threshold = (share / (2 * (W::BITS as usize / 8))).clamp(1024, 4096);
                    self.store = Some(SortedRunStore::new(threshold));
                    return Step::Yield;
                }
                // Parse a batch.
                let end = (self.cursor + self.cfg.batch_reads).min(self.range.end);
                let mut kmers = 0u64;
                let mut bases = 0u64;
                for i in self.cursor..end {
                    let read = self.reads.get(i);
                    bases += read.len() as u64;
                    for w in kmers_of_read::<W>(read, self.cfg.k, self.cfg.canonical) {
                        kmers += 1;
                        self.agg.as_mut().expect("created").async_add(ctx, w);
                    }
                }
                self.cursor = end;
                costs::charge_parse(ctx, kmers);
                costs::charge_parse_traffic(ctx, bases, kmers, (W::BITS / 8) as u64);
                self.absorb(ctx);
                if self.cursor == self.range.end {
                    self.agg.as_mut().expect("created").flush(ctx);
                    self.st = St::Drain;
                    Step::Barrier
                } else {
                    Step::Yield
                }
            }
            St::Drain => {
                let processed = self.absorb(ctx);
                if processed > 0 || ctx.has_ready() {
                    Step::Barrier
                } else {
                    self.st = St::Finalize;
                    Step::Yield
                }
            }
            St::Finalize => {
                ctx.set_phase(1);
                let counts = self.store.take().expect("created").finalize(ctx);
                self.agg.as_mut().expect("created").release(ctx);
                self.sink.borrow_mut()[ctx.pe()] = Some(counts);
                self.st = St::Done;
                Step::Done
            }
            St::Done => Step::Done,
        }
    }
}

/// Result of a phase-overlapped run.
#[derive(Debug, Clone)]
pub struct OverlapRun<W> {
    /// The global histogram, sorted by k-mer.
    pub counts: Vec<KmerCount<W>>,
    /// Simulator accounting.
    pub report: SimReport,
}

/// Runs phase-overlapped DAKC on the virtual cluster.
pub fn count_kmers_sim_overlap<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    machine: &MachineConfig,
) -> Result<OverlapRun<W>, SimError> {
    cfg.validate::<W>();
    let p = machine.num_pes();
    let reads = Arc::new(reads.clone());
    let sink: Sink<W> = Rc::new(RefCell::new(vec![None; p]));
    let programs: Vec<Box<dyn Program>> = (0..p)
        .map(|pe| {
            let range = reads.pe_range(pe, p);
            Box::new(OverlapPeProgram::<W> {
                cfg: cfg.clone(),
                reads: Arc::clone(&reads),
                cursor: range.start,
                range,
                agg: None,
                store: None,
                sink: sink.clone(),
                st: St::Parse,
            }) as Box<dyn Program>
        })
        .collect();
    let report = Simulator::new(machine.clone()).run(programs)?;
    let mut counts: Vec<KmerCount<W>> = Rc::try_unwrap(sink)
        .expect("sole owner")
        .into_inner()
        .into_iter()
        .flat_map(|o| o.expect("published"))
        .collect();
    counts.sort_unstable_by_key(|c| c.kmer);
    Ok(OverlapRun { counts, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dakc_kmer::CanonicalMode;

    fn reads(n: usize, seed: u64) -> ReadSet {
        use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
        let g = generate_genome(&GenomeSpec { bases: 4000, repeats: None }, seed);
        simulate_reads(
            &g,
            &ReadSimConfig { read_len: 120, num_reads: n, error_rate: 0.01, both_strands: false },
            seed,
        )
    }

    fn reference(rs: &ReadSet, k: usize) -> Vec<KmerCount<u64>> {
        use std::collections::BTreeMap;
        let mut h: BTreeMap<u64, u32> = BTreeMap::new();
        for r in rs.iter() {
            for w in kmers_of_read::<u64>(r, k, CanonicalMode::Forward) {
                *h.entry(w).or_default() += 1;
            }
        }
        h.into_iter().map(|(w, c)| KmerCount::new(w, c)).collect()
    }

    #[test]
    fn kway_merge_merges_and_sums() {
        let runs = vec![
            vec![KmerCount::new(1u64, 2), KmerCount::new(5, 1)],
            vec![KmerCount::new(1u64, 3), KmerCount::new(3, 1)],
            vec![KmerCount::new(5u64, 4)],
        ];
        let merged = kway_merge(runs);
        assert_eq!(
            merged,
            vec![KmerCount::new(1, 5), KmerCount::new(3, 1), KmerCount::new(5, 5)]
        );
    }

    #[test]
    fn kway_merge_empty_and_single() {
        assert!(kway_merge::<u64>(vec![]).is_empty());
        let one = vec![vec![KmerCount::new(7u64, 1)]];
        assert_eq!(kway_merge(one), vec![KmerCount::new(7, 1)]);
    }

    #[test]
    fn overlap_matches_reference() {
        let rs = reads(150, 1);
        let machine = MachineConfig::test_machine(2, 2);
        let run =
            count_kmers_sim_overlap::<u64>(&rs, &DakcConfig::scaled_defaults(17), &machine)
                .unwrap();
        assert_eq!(run.counts, reference(&rs, 17));
    }

    #[test]
    fn overlap_matches_reference_with_l3() {
        let rs = reads(120, 2);
        let machine = MachineConfig::test_machine(3, 1);
        let mut cfg = DakcConfig::scaled_defaults(13).with_l3();
        cfg.c3 = 64;
        let run = count_kmers_sim_overlap::<u64>(&rs, &cfg, &machine).unwrap();
        assert_eq!(run.counts, reference(&rs, 13));
    }

    #[test]
    fn overlap_matches_stock_dakc() {
        let rs = reads(200, 3);
        let machine = MachineConfig::phoenix_intel(2);
        let cfg = DakcConfig::scaled_defaults(21);
        let stock = crate::engine::count_kmers_sim::<u64>(&rs, &cfg, &machine).unwrap();
        let ov = count_kmers_sim_overlap::<u64>(&rs, &cfg, &machine).unwrap();
        assert_eq!(stock.counts, ov.counts);
    }

    #[test]
    fn overlap_shrinks_post_barrier_phase() {
        // Needs enough per-PE k-mers that runs close during phase 1.
        let rs = reads(3_000, 4);
        let machine = MachineConfig::phoenix_intel(2);
        let cfg = DakcConfig::scaled_defaults(21);
        let stock = crate::engine::count_kmers_sim::<u64>(&rs, &cfg, &machine).unwrap();
        let ov = count_kmers_sim_overlap::<u64>(&rs, &cfg, &machine).unwrap();
        let stock_p2 = stock.report.phase_time.get(1).copied().unwrap_or(0.0);
        let ov_p2 = ov.report.phase_time.get(1).copied().unwrap_or(0.0);
        assert!(
            ov_p2 < stock_p2,
            "post-barrier work must shrink: {ov_p2} vs {stock_p2}"
        );
    }

    #[test]
    fn run_store_flushes_at_threshold() {
        // Drive the store directly inside a one-PE simulation.
        struct Probe;
        impl Program for Probe {
            fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
                let mut store = SortedRunStore::<u64>::new(4);
                for w in [5u64, 1, 5, 2, 9, 9, 9, 1] {
                    store.push_plain(ctx, w);
                }
                assert_eq!(store.run_count(), 2);
                let counts = store.finalize(ctx);
                assert_eq!(
                    counts,
                    vec![
                        KmerCount::new(1u64, 2),
                        KmerCount::new(2, 1),
                        KmerCount::new(5, 2),
                        KmerCount::new(9, 3),
                    ]
                );
                Step::Done
            }
        }
        Simulator::new(MachineConfig::test_machine(1, 1))
            .run(vec![Box::new(Probe)])
            .unwrap();
    }
}
