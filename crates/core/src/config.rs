//! DAKC configuration: the four aggregation parameters of Table III plus
//! algorithm knobs.

use dakc_conveyors::Protocol;
use dakc_kmer::CanonicalMode;

/// Complete configuration of a DAKC run.
#[derive(Debug, Clone, PartialEq)]
pub struct DakcConfig {
    /// k-mer length (paper: `k = 31` throughout the evaluation).
    pub k: usize,
    /// Conveyors routing protocol (paper default: 1D — 10–20% faster than
    /// 2D/3D at higher memory cost, §VI-F).
    pub protocol: Protocol,
    /// L0 buffer capacity in bytes (Table III: 40 KiB).
    pub c0_bytes: usize,
    /// L1 staged packets before draining to L0 (Table III: `C1 = 1024`).
    pub c1_packets: usize,
    /// L2 packing factor: k-mers per conveyor packet (Table III:
    /// `C2 = 32`; Fig 13a shows degradation below 8).
    pub c2: usize,
    /// L3 pre-accumulation buffer length (Table III: `C3 = 10⁴`; Fig 13b
    /// shows a flat optimum over 10³–10⁶).
    pub c3: usize,
    /// Enables the L2 packing layer (`false` reproduces Fig 12's "L0–L1"
    /// ablation: one k-mer per packet).
    pub enable_l2: bool,
    /// Enables the L3 heavy-hitter layer (requires L2; the paper turns it
    /// on only for genomes with known high-frequency k-mers, §VI-C).
    pub enable_l3: bool,
    /// Forward (paper) or canonical (strand-neutral) counting.
    pub canonical: CanonicalMode,
    /// Reads parsed per scheduler step in the simulator engine
    /// (granularity of asynchrony; no algorithmic effect).
    pub batch_reads: usize,
    /// Causal flow tracing: tag one in `N` L2 packet opens with a
    /// [`dakc_sim::FlowTag`] and record its per-stage residency at the
    /// remote drain. `None` disables flow tracing entirely (the default —
    /// the hot path then pays a single `Option` check per packet open);
    /// `Some(1)` tags every packet.
    pub trace_sample: Option<u32>,
    /// Super-k-mer wire encoding (L2.5): route whole minimizer spans
    /// instead of per-k-mer words and expand them at the destination.
    /// Cuts bytes-on-wire ~`k/…`-fold because overlapping k-mers ship
    /// their shared bases once. Off by default — the default wire format
    /// stays bit-identical to the per-k-mer cascade. Implies the L3
    /// pre-accumulation layer is bypassed (it is per-k-mer).
    pub superkmer: bool,
    /// Minimizer length `m` for super-k-mer decomposition (KMC2-style;
    /// must satisfy `1 <= m <= min(k, 32)`). Smaller `m` gives longer
    /// spans (better compression) but skews owner load; the default 7
    /// tracks the related work's sweet spot for k≈31.
    pub minimizer_len: usize,
}

/// Default minimizer length for `--superkmer` runs.
pub const DEFAULT_MINIMIZER_LEN: usize = 7;

impl DakcConfig {
    /// The paper's production parameters (Table III) for a given `k`.
    pub fn paper_defaults(k: usize) -> Self {
        Self {
            k,
            protocol: Protocol::OneD,
            c0_bytes: 40 * 1024,
            c1_packets: 1024,
            c2: 32,
            c3: 10_000,
            enable_l2: true,
            enable_l3: false,
            canonical: CanonicalMode::Forward,
            batch_reads: 64,
            trace_sample: None,
            superkmer: false,
            minimizer_len: DEFAULT_MINIMIZER_LEN,
        }
    }

    /// Parameters proportioned for the workspace's scaled-down datasets
    /// (DESIGN.md §4): smaller buffers so the multi-flush dynamics of the
    /// full-scale system still occur at ~4000× smaller inputs.
    pub fn scaled_defaults(k: usize) -> Self {
        Self {
            c0_bytes: 2 * 1024,
            c1_packets: 64,
            c3: 2_048,
            ..Self::paper_defaults(k)
        }
    }

    /// Enables L3 (and L2, which it requires) — what the paper does for
    /// Human and *T. aestivum*.
    pub fn with_l3(mut self) -> Self {
        self.enable_l2 = true;
        self.enable_l3 = true;
        self
    }

    /// Enables causal flow tracing at a 1-in-`n` packet sampling rate
    /// (`n = 1` tags every packet — what `--trace-sample 1` requests).
    pub fn with_trace_sample(mut self, n: u32) -> Self {
        self.trace_sample = Some(n.max(1));
        self
    }

    /// Enables super-k-mer span encoding with minimizer length `m`.
    pub fn with_superkmer(mut self, m: usize) -> Self {
        self.superkmer = true;
        self.minimizer_len = m;
        self
    }

    /// Disables the application-specific layers (Fig 12's "L0–L1" mode).
    pub fn l0_l1_only(mut self) -> Self {
        self.enable_l2 = false;
        self.enable_l3 = false;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on invalid combinations (L3 without L2, `c2 < 2`, zero
    /// buffer sizes, unsupported `k`).
    pub fn validate<W: dakc_kmer::KmerWord>(&self) {
        assert!(
            (1..=W::MAX_K).contains(&self.k),
            "k = {} out of range for this word width (max {})",
            self.k,
            W::MAX_K
        );
        assert!(!self.enable_l3 || self.enable_l2, "L3 requires L2");
        assert!(self.c2 >= 2, "C2 must be at least 2 (heavy packets hold C2/2)");
        assert!(self.c3 >= 2, "C3 must hold at least 2 elements");
        assert!(self.c0_bytes >= 64, "C0 too small to hold one packet");
        assert!(self.c1_packets >= 1);
        assert!(self.batch_reads >= 1);
        if self.superkmer {
            assert!(
                self.minimizer_len >= 1
                    && self.minimizer_len <= self.k
                    && self.minimizer_len <= 32,
                "minimizer length m = {} must satisfy 1 <= m <= min(k = {}, 32)",
                self.minimizer_len,
                self.k
            );
        }
    }

    /// Bytes of one k-mer word on the wire for width `W`.
    pub fn kmer_bytes<W: dakc_kmer::KmerWord>(&self) -> usize {
        (W::BITS / 8) as usize
    }

    /// Maximum payload of the NORMAL packed channel: `C2` k-mer words.
    /// Packets are variable-length on the wire (a partial final flush
    /// ships only what it holds).
    pub fn normal_payload<W: dakc_kmer::KmerWord>(&self) -> usize {
        self.c2 * self.kmer_bytes::<W>()
    }

    /// Maximum payload of the HEAVY channel: `C2/2` `{k-mer, u32}` pairs.
    pub fn heavy_payload<W: dakc_kmer::KmerWord>(&self) -> usize {
        (self.c2 / 2) * (self.kmer_bytes::<W>() + 4)
    }

    /// Payload size of the SINGLE channel (L2 disabled): one k-mer word.
    pub fn single_payload<W: dakc_kmer::KmerWord>(&self) -> usize {
        self.kmer_bytes::<W>()
    }

    /// Maximum payload of the SUPER span channel: sized to the NORMAL
    /// packet budget so L0 buffer dynamics stay comparable, but never
    /// below one maximally packed span record.
    pub fn super_payload<W: dakc_kmer::KmerWord>(&self) -> usize {
        self.normal_payload::<W>().max(dakc_kmer::packed_span_bytes(2 * self.k))
    }

    /// Channel framing table for the conveyor, indexed by
    /// [`crate::aggregate::CH_NORMAL`], [`crate::aggregate::CH_HEAVY`],
    /// [`crate::aggregate::CH_SINGLE`], [`crate::aggregate::CH_SUPER`].
    /// The SUPER entry exists unconditionally — channel-table size never
    /// reaches the wire, only pushed records do, so the default mode's
    /// wire bytes are unchanged by its presence.
    pub fn channels<W: dakc_kmer::KmerWord>(&self) -> Vec<dakc_conveyors::ChannelKind> {
        use dakc_conveyors::ChannelKind;
        vec![
            ChannelKind::Variable,
            ChannelKind::Variable,
            ChannelKind::Fixed(self.single_payload::<W>()),
            ChannelKind::Variable,
        ]
    }

    /// Table III's application-layer memory per PE in bytes:
    /// `L2: ~(C2·wordsize + overhead) × P` buffers + `L3: C3` elements.
    pub fn app_layer_bytes<W: dakc_kmer::KmerWord>(&self, num_pes: usize) -> u64 {
        let w = self.kmer_bytes::<W>() as u64;
        let l2 = if self.enable_l2 {
            // NORMAL + HEAVY buffers per destination.
            num_pes as u64 * (self.c2 as u64 * w + (self.c2 as u64 / 2) * (w + 4))
        } else {
            0
        };
        let l3 = if self.enable_l3 { self.c3 as u64 * w } else { 0 };
        let l25 = if self.superkmer {
            num_pes as u64 * self.super_payload::<W>() as u64
        } else {
            0
        };
        l2 + l3 + l25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_iii() {
        let c = DakcConfig::paper_defaults(31);
        assert_eq!(c.c0_bytes, 40 * 1024);
        assert_eq!(c.c1_packets, 1024);
        assert_eq!(c.c2, 32);
        assert_eq!(c.c3, 10_000);
        assert_eq!(c.protocol, Protocol::OneD);
        c.validate::<u64>();
    }

    #[test]
    fn payload_sizes() {
        let c = DakcConfig::paper_defaults(31);
        assert_eq!(c.normal_payload::<u64>(), 32 * 8);
        assert_eq!(c.heavy_payload::<u64>(), 16 * 12);
        assert_eq!(c.single_payload::<u64>(), 8);
        assert_eq!(c.normal_payload::<u128>(), 32 * 16);
    }

    #[test]
    fn with_l3_implies_l2() {
        let c = DakcConfig::paper_defaults(31).l0_l1_only().with_l3();
        assert!(c.enable_l2 && c.enable_l3);
        c.validate::<u64>();
    }

    #[test]
    #[should_panic(expected = "L3 requires L2")]
    fn l3_without_l2_rejected() {
        let mut c = DakcConfig::paper_defaults(31);
        c.enable_l2 = false;
        c.enable_l3 = true;
        c.validate::<u64>();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_too_large_for_u64() {
        DakcConfig::paper_defaults(33).validate::<u64>();
    }

    #[test]
    fn k_33_valid_for_u128() {
        DakcConfig::paper_defaults(33).validate::<u128>();
    }

    #[test]
    fn app_layer_memory_scales_with_p() {
        let c = DakcConfig::paper_defaults(31);
        let m1 = c.app_layer_bytes::<u64>(24);
        let m2 = c.app_layer_bytes::<u64>(48);
        assert!(m2 > m1);
        // Table III order of magnitude: 264 B per destination buffer pair
        // is ~ C2·8 = 256 B for NORMAL alone.
        assert!(m1 >= 24 * 256);
    }
}
