//! The real shared-memory engine: DAKC on OS threads.
//!
//! On a single node the paper's runtime "detects when two PEs are
//! colocated … and converts the asynchronous messages into memcpy calls"
//! (§VI-B), which is what makes DAKC competitive with — and ≈2× faster
//! than — KMC3 on one node. This engine is that configuration, built
//! directly on scoped threads, with a contention-free hot path:
//!
//! * every thread parses its block of reads with the batch extractor
//!   ([`dakc_kmer::extract_into`]: rolling canonical form, no per-k-mer
//!   iterator dispatch) and routes k-mers to their owner thread through
//!   **per-(producer, owner) SPSC lanes**: each lane is a single-producer/
//!   single-consumer channel, the producer fills a private batch buffer
//!   and hands off the whole batch in one channel send — no lock any other
//!   thread can contend on (the L2 idea in memcpy form);
//! * at flush time the producer counting-scatters the batch by the k-mer's
//!   **top radix byte**, so batches arrive pre-partitioned and phase 2
//!   assembles each of the owner's ≤256 buckets with pure `memcpy`s;
//! * an optional L3 stage pre-accumulates heavy hitters locally before
//!   routing (into a reused scratch buffer), shipping `{k-mer, count}`
//!   pairs instead of repeats;
//! * after a phase barrier every owner drains its lanes, sorts each
//!   cache-resident bucket independently ([`hybrid_sort_from`], which
//!   skips the radix levels the partitioning already fixed), and folds the
//!   result into `{k-mer, count}` records in one fused, capacity-reserved
//!   sweep.
//!
//! All synchronization is two `std::sync::Barrier` waits — the same
//! synchronization structure as the distributed algorithm.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

use dakc_io::ReadSet;
use dakc_kmer::{
    counts::merge_sorted_counts, extract_into, for_each_span, owner_pe, pack_span, unpack_spans,
    CanonicalMode, KmerCount, KmerWord,
};
use dakc_sim::telemetry::Event;
use dakc_sim::{EventKind, FlowSampler};
use dakc_sort::{
    accumulate_into, accumulate_weighted, distinct_runs_estimate, hybrid_sort, hybrid_sort_from,
    lsd_radix_sort_by, RadixKey,
};

/// Result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedRun<W> {
    /// The global histogram, sorted by k-mer.
    pub counts: Vec<KmerCount<W>>,
    /// Wall-clock time of the counting (excludes input generation).
    pub elapsed: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Flight-recorder events (timestamps are wall-clock seconds since
    /// run start; `pe` is the worker thread id), present when tracing was
    /// requested via [`count_kmers_threaded_traced`]. Events are grouped
    /// by worker, each worker's stream in chronological order.
    pub trace: Option<Vec<Event>>,
}

/// Default words per route-lane batch (the memcpy analogue of an L2
/// packet); override via [`ThreadedOpts::route_batch`].
pub const DEFAULT_ROUTE_BATCH: usize = 1024;

/// Options for [`count_kmers_threaded_opts`].
#[derive(Debug, Clone, Copy)]
pub struct ThreadedOpts {
    /// Record flight-recorder events into [`ThreadedRun::trace`].
    pub trace: bool,
    /// Causal flow sampling: tag one in `N` route-buffer opens and record
    /// its wall-clock residency (pack wait + lane drain wait) when the
    /// owner consumes it in phase 2. `None` disables flow tracing.
    pub trace_sample: Option<u32>,
    /// Words a route lane accumulates before the batch is handed to its
    /// owner ([`DEFAULT_ROUTE_BATCH`] by default). Smaller batches hand
    /// off more often (more channel sends, fresher flow samples); larger
    /// batches amortize the per-batch partition-and-send cost.
    pub route_batch: usize,
    /// Super-k-mer span routing (L2.5) with the given minimizer length
    /// `m`: producers decompose reads into minimizer spans, route each
    /// packed span to `owner(minimizer)`, and owners expand spans back
    /// into k-mer words before phase 2. Ownership by minimizer is still a
    /// disjoint partition (a k-mer's minimizer is a pure function of the
    /// k-mer), so the final cross-thread merge is unchanged. `l3_buffer`
    /// is bypassed in this mode — L3 pre-accumulation is per-k-mer and
    /// the producer never materializes individual k-mers.
    pub superkmer: Option<usize>,
}

impl Default for ThreadedOpts {
    fn default() -> Self {
        Self {
            trace: false,
            trace_sample: None,
            route_batch: DEFAULT_ROUTE_BATCH,
            superkmer: None,
        }
    }
}

/// One flushed route batch crossing an SPSC lane: the producer's private
/// buffer, counting-scattered by the k-mer's top radix byte so the owner
/// can place every bucket run with a `copy_from_slice`.
struct RouteBatch<W> {
    /// k-mers in ascending top-byte bucket order.
    words: Vec<W>,
    /// Words per top-byte bucket; prefix sums recover the runs in `words`.
    counts: Box<[u32; 256]>,
    /// Sampled-flow sidecar riding out of band, exactly like the
    /// simulator's `Msg.flows`: (flow id, src worker, open time, send
    /// time). Never changes what the lane carries.
    flow: Option<(u64, u32, f64, f64)>,
}

/// A heavy-hitter shipment: L3-accumulated `(k-mer, count)` pairs.
type PairBatch<W> = Vec<(W, u32)>;

/// Index of the most significant radix byte inside the `2k`-bit window.
/// All bytes above it are zero, so partitioning on it makes concatenated
/// sorted buckets globally sorted.
fn top_byte_level(k: usize) -> usize {
    (2 * k - 1) / 8
}

/// Counts k-mers with `threads` workers. `l3_buffer` enables the
/// heavy-hitter pre-accumulation stage with the given `C3`.
pub fn count_kmers_threaded<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    canonical: CanonicalMode,
    threads: usize,
    l3_buffer: Option<usize>,
) -> ThreadedRun<W> {
    count_kmers_threaded_traced(reads, k, canonical, threads, l3_buffer, false)
}

/// Like [`count_kmers_threaded`], but when `trace` is set each worker
/// records flight-recorder events (lane batch flushes, L3 drains, the
/// phase barrier, phase transitions) into a thread-local buffer, merged
/// into [`ThreadedRun::trace`] after the run. Timestamps are wall-clock
/// seconds since run start — unlike simulator traces they are *not*
/// byte-reproducible across runs.
pub fn count_kmers_threaded_traced<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    canonical: CanonicalMode,
    threads: usize,
    l3_buffer: Option<usize>,
    trace: bool,
) -> ThreadedRun<W> {
    count_kmers_threaded_opts(
        reads,
        k,
        canonical,
        threads,
        l3_buffer,
        &ThreadedOpts { trace, ..ThreadedOpts::default() },
    )
}

/// Like [`count_kmers_threaded_traced`], with causal flow tracing: when
/// [`ThreadedOpts::trace_sample`] is set, a sampled route-buffer open mints
/// a flow id ([`EventKind::FlowSend`] at the batch handoff into the
/// owner's lane) that the owner closes with an [`EventKind::FlowRecv`]
/// when phase 2 drains the lane. The wall-clock analogue of the
/// simulator's virtual residencies: the pack wait lands in `l2_s`, the
/// lane wait in `drain_s`, and the memcpy stages (`l1/l0/net`) are
/// zero-width.
pub fn count_kmers_threaded_opts<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    canonical: CanonicalMode,
    threads: usize,
    l3_buffer: Option<usize>,
    opts: &ThreadedOpts,
) -> ThreadedRun<W> {
    let trace = opts.trace;
    let trace_sample = opts.trace_sample;
    let route_batch = opts.route_batch.max(1);
    let superkmer = opts.superkmer;
    assert!(threads >= 1);
    assert!((1..=W::MAX_K).contains(&k), "k out of range");
    if let Some(m) = superkmer {
        assert!(
            m >= 1 && m <= k && m <= 32,
            "minimizer length m = {m} must satisfy 1 <= m <= min(k = {k}, 32)"
        );
    }
    let start = Instant::now();

    // One SPSC lane per (producer, owner) pair, for word batches and for
    // L3 heavy-hitter pairs. `word_txs[p][o]` is producer p's private
    // sender towards owner o; `word_rxs[o][p]` is the matching receiver.
    // No lane is ever touched by more than one producer or one consumer,
    // so a batch handoff is a single channel send with no shared lock.
    let mut word_txs: Vec<Vec<Sender<RouteBatch<W>>>> =
        (0..threads).map(|_| Vec::with_capacity(threads)).collect();
    let mut word_rxs: Vec<Vec<Receiver<RouteBatch<W>>>> =
        (0..threads).map(|_| Vec::with_capacity(threads)).collect();
    let mut pair_txs: Vec<Vec<Sender<PairBatch<W>>>> =
        (0..threads).map(|_| Vec::with_capacity(threads)).collect();
    let mut pair_rxs: Vec<Vec<Receiver<PairBatch<W>>>> =
        (0..threads).map(|_| Vec::with_capacity(threads)).collect();
    // Span lanes (superkmer mode only): packed-span byte batches.
    let mut span_txs: Vec<Vec<Sender<Vec<u8>>>> =
        (0..threads).map(|_| Vec::with_capacity(threads)).collect();
    let mut span_rxs: Vec<Vec<Receiver<Vec<u8>>>> =
        (0..threads).map(|_| Vec::with_capacity(threads)).collect();
    for p in 0..threads {
        for o in 0..threads {
            let (tx, rx) = channel();
            word_txs[p].push(tx);
            word_rxs[o].push(rx);
            let (tx, rx) = channel();
            pair_txs[p].push(tx);
            pair_rxs[o].push(rx);
            let (tx, rx) = channel();
            span_txs[p].push(tx);
            span_rxs[o].push(rx);
        }
    }
    // Staged-words gauge per owner (the memcpy-engine analogue of the
    // simulator's pending-message gauge); only touched when tracing.
    let staged: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
    let phase_barrier = Barrier::new(threads);
    let outputs: Vec<Mutex<Option<Vec<KmerCount<W>>>>> =
        (0..threads).map(|_| Mutex::new(None)).collect();
    let traces: Vec<Mutex<Vec<Event>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();

    std::thread::scope(|s| {
        let lanes = word_txs
            .into_iter()
            .zip(word_rxs)
            .zip(pair_txs.into_iter().zip(pair_rxs))
            .zip(span_txs.into_iter().zip(span_rxs));
        for (t, (((wtx, wrx), (ptx, prx)), (stx, srx))) in lanes.enumerate() {
            let staged = &staged;
            let phase_barrier = &phase_barrier;
            let outputs = &outputs;
            let traces = &traces;
            let start = &start;
            s.spawn(move || {
                let mut ev: Option<Vec<Event>> = trace.then(Vec::new);
                let record = |ev: &mut Option<Vec<Event>>, kind: EventKind| {
                    if let Some(ev) = ev {
                        ev.push(Event {
                            ts: start.elapsed().as_secs_f64(),
                            pe: t as u32,
                            kind,
                        });
                    }
                };
                record(&mut ev, EventKind::Phase { phase: 0 });

                // --- Phase 1: parse and route ---
                let bucket_level = top_byte_level(k);
                let mut route: Vec<Vec<W>> =
                    (0..threads).map(|_| Vec::with_capacity(route_batch)).collect();
                let mut pair_route: Vec<Vec<(W, u32)>> = vec![Vec::new(); threads];
                let mut l3: Vec<W> = Vec::new();
                // Reused accumulate scratch: the L3 drain allocates nothing
                // at steady state.
                let mut l3_acc: Vec<(W, u32)> = Vec::new();
                let word_bytes = std::mem::size_of::<W>();
                let mut sampler = FlowSampler::new(t as u32, trace_sample);
                // Open flow per route buffer: (flow id, open time).
                let mut route_flow: Vec<Option<(u64, f64)>> = vec![None; threads];

                // Flow-open hook: one route-buffer open (empty → first
                // push) counts once on the sampler.
                let open_flow = |owner: usize,
                                 route: &[Vec<W>],
                                 route_flow: &mut [Option<(u64, f64)>],
                                 sampler: &mut FlowSampler| {
                    if sampler.enabled() && route[owner].is_empty() {
                        if let Some(flow) = sampler.sample() {
                            route_flow[owner] = Some((flow, start.elapsed().as_secs_f64()));
                        }
                    }
                };
                // Batch handoff: counting-scatter the filled buffer by top
                // radix byte into a fresh batch and send it down the SPSC
                // lane. The fill buffer is retained and cleared — the
                // double-buffer swap that keeps the lane contention-free.
                let flush_owner = |owner: usize,
                                   route: &mut [Vec<W>],
                                   route_flow: &mut [Option<(u64, f64)>],
                                   ev: &mut Option<Vec<Event>>| {
                    let buf = &mut route[owner];
                    if buf.is_empty() {
                        return;
                    }
                    let mut counts = Box::new([0u32; 256]);
                    for w in buf.iter() {
                        counts[w.radix_at(bucket_level) as usize] += 1;
                    }
                    let mut offs = [0u32; 256];
                    let mut sum = 0u32;
                    for (o, &c) in offs.iter_mut().zip(counts.iter()) {
                        *o = sum;
                        sum += c;
                    }
                    let mut words = vec![W::zero(); buf.len()];
                    for &w in buf.iter() {
                        let b = w.radix_at(bucket_level) as usize;
                        words[offs[b] as usize] = w;
                        offs[b] += 1;
                    }
                    record(ev, EventKind::MsgSend {
                        dst: owner as u32,
                        tag: 0,
                        bytes: (words.len() * word_bytes) as u32,
                    });
                    let flow = route_flow[owner].take().map(|(flow, t_open)| {
                        let t_send = start.elapsed().as_secs_f64();
                        record(ev, EventKind::FlowSend {
                            flow,
                            channel: 0,
                            dst: owner as u32,
                        });
                        (flow, t as u32, t_open, t_send)
                    });
                    if trace {
                        // Depth of the receiver's staged words across all
                        // of its lanes.
                        let depth =
                            staged[owner].fetch_add(words.len(), Ordering::Relaxed) + words.len();
                        record(ev, EventKind::QueueDepth { depth: depth as u32 });
                    }
                    buf.clear();
                    wtx[owner]
                        .send(RouteBatch { words, counts, flow })
                        .expect("owner holds its receivers past the barrier");
                };
                let drain_l3 = |l3: &mut Vec<W>,
                                l3_acc: &mut Vec<(W, u32)>,
                                route: &mut [Vec<W>],
                                pair_route: &mut [Vec<(W, u32)>],
                                route_flow: &mut [Option<(u64, f64)>],
                                sampler: &mut FlowSampler,
                                ev: &mut Option<Vec<Event>>| {
                    record(ev, EventKind::L3Flush {
                        occupancy: l3.len() as u32,
                        cap: l3_buffer.unwrap_or(l3.len()) as u32,
                    });
                    hybrid_sort(l3.as_mut_slice());
                    accumulate_into(l3, l3_acc);
                    for &(w, c) in l3_acc.iter() {
                        let owner = owner_pe(w, threads);
                        if c > 2 {
                            pair_route[owner].push((w, c));
                        } else {
                            for _ in 0..c {
                                open_flow(owner, route, route_flow, sampler);
                                route[owner].push(w);
                                if route[owner].len() >= route_batch {
                                    flush_owner(owner, route, route_flow, ev);
                                }
                            }
                        }
                    }
                    l3.clear();
                };

                if let Some(m) = superkmer {
                    // L2.5: decompose into minimizer spans, pack each span
                    // into its owner's byte buffer, hand whole buffers down
                    // the span lane. No per-k-mer word is ever produced on
                    // this side; `l3_buffer` is bypassed (per-k-mer).
                    let span_budget = (route_batch * word_bytes).max(64);
                    let mut span_bufs: Vec<Vec<u8>> = vec![Vec::new(); threads];
                    let canon = canonical == CanonicalMode::Canonical;
                    for i in reads.pe_range(t, threads) {
                        for_each_span(reads.get(i), k, m, canon, |mz, span| {
                            let owner = owner_pe(mz, threads);
                            let buf = &mut span_bufs[owner];
                            pack_span(buf, span);
                            if buf.len() >= span_budget {
                                record(&mut ev, EventKind::MsgSend {
                                    dst: owner as u32,
                                    tag: 2,
                                    bytes: buf.len() as u32,
                                });
                                stx[owner]
                                    .send(std::mem::take(buf))
                                    .expect("owner holds its receivers past the barrier");
                            }
                        });
                    }
                    for (owner, buf) in span_bufs.iter_mut().enumerate() {
                        if !buf.is_empty() {
                            record(&mut ev, EventKind::MsgSend {
                                dst: owner as u32,
                                tag: 2,
                                bytes: buf.len() as u32,
                            });
                            stx[owner]
                                .send(std::mem::take(buf))
                                .expect("owner holds its receivers past the barrier");
                        }
                    }
                } else {
                    match l3_buffer {
                        None => {
                            for i in reads.pe_range(t, threads) {
                                extract_into::<W>(reads.get(i), k, canonical, |w| {
                                    let owner = owner_pe(w, threads);
                                    open_flow(owner, &route, &mut route_flow, &mut sampler);
                                    route[owner].push(w);
                                    if route[owner].len() >= route_batch {
                                        flush_owner(owner, &mut route, &mut route_flow, &mut ev);
                                    }
                                });
                            }
                        }
                        Some(c3) => {
                            for i in reads.pe_range(t, threads) {
                                extract_into::<W>(reads.get(i), k, canonical, |w| {
                                    l3.push(w);
                                    if l3.len() >= c3 {
                                        drain_l3(
                                            &mut l3,
                                            &mut l3_acc,
                                            &mut route,
                                            &mut pair_route,
                                            &mut route_flow,
                                            &mut sampler,
                                            &mut ev,
                                        );
                                    }
                                });
                            }
                            if !l3.is_empty() {
                                drain_l3(
                                    &mut l3,
                                    &mut l3_acc,
                                    &mut route,
                                    &mut pair_route,
                                    &mut route_flow,
                                    &mut sampler,
                                    &mut ev,
                                );
                            }
                        }
                    }
                    for owner in 0..threads {
                        flush_owner(owner, &mut route, &mut route_flow, &mut ev);
                        if !pair_route[owner].is_empty() {
                            record(&mut ev, EventKind::MsgSend {
                                dst: owner as u32,
                                tag: 1,
                                bytes: (pair_route[owner].len() * (word_bytes + 4)) as u32,
                            });
                            ptx[owner]
                                .send(std::mem::take(&mut pair_route[owner]))
                                .expect("owner holds its receivers past the barrier");
                        }
                    }
                }
                // Hang up the lanes: every batch is in flight before the
                // barrier, so phase 2's drains observe complete channels.
                drop(wtx);
                drop(ptx);
                drop(stx);

                // --- GLOBAL BARRIER (paper's phase boundary) ---
                record(&mut ev, EventKind::BarrierEnter);
                let entered = start.elapsed().as_secs_f64();
                phase_barrier.wait();
                record(&mut ev, EventKind::BarrierExit {
                    waited_s: start.elapsed().as_secs_f64() - entered,
                });
                record(&mut ev, EventKind::Phase { phase: 1 });

                // --- Phase 2: drain lanes, bucket, sort, accumulate ---
                let mut batches: Vec<RouteBatch<W>> = Vec::new();
                let mut bucket_totals = [0usize; 256];
                for rx in &wrx {
                    for batch in rx.try_iter() {
                        for (tot, &c) in bucket_totals.iter_mut().zip(batch.counts.iter()) {
                            *tot += c as usize;
                        }
                        batches.push(batch);
                    }
                }
                // Close sampled flows: the lane drain is the consume
                // point, so drain residency is barrier-exit → now.
                if ev.is_some() {
                    let now = start.elapsed().as_secs_f64();
                    for batch in &batches {
                        if let Some((flow, src, t_open, t_send)) = batch.flow {
                            record(&mut ev, EventKind::FlowRecv {
                                flow,
                                channel: 0,
                                src,
                                l3_s: 0.0,
                                l2_s: t_send - t_open,
                                l1_s: 0.0,
                                l0_s: 0.0,
                                net_s: 0.0,
                                drain_s: now - t_send,
                                e2e_s: now - t_open,
                            });
                        }
                    }
                }

                // Assemble the partition bucket by bucket: every batch is
                // already scattered by top byte, so placement is one
                // `copy_from_slice` per (batch, bucket) run.
                let total: usize = bucket_totals.iter().sum();
                let mut starts = [0usize; 256];
                let mut sum = 0usize;
                for (s0, &c) in starts.iter_mut().zip(bucket_totals.iter()) {
                    *s0 = sum;
                    sum += c;
                }
                let mut cursor = starts;
                let mut mine = vec![W::zero(); total];
                for batch in &batches {
                    let mut off = 0usize;
                    for (bk, &c) in batch.counts.iter().enumerate() {
                        let c = c as usize;
                        if c > 0 {
                            mine[cursor[bk]..cursor[bk] + c]
                                .copy_from_slice(&batch.words[off..off + c]);
                            cursor[bk] += c;
                            off += c;
                        }
                    }
                }
                drop(batches);

                // Sort each cache-resident bucket; concatenated buckets
                // are globally sorted because the bucket byte is the most
                // significant in-window byte. At bucket_level 0 the bucket
                // byte is the whole key, so buckets are constant already.
                if bucket_level > 0 {
                    for bk in 0..256 {
                        let (lo, hi) = (starts[bk], cursor[bk]);
                        if hi - lo > 1 {
                            hybrid_sort_from(&mut mine[lo..hi], bucket_level - 1);
                        }
                    }
                }

                // Span lanes replace the word lanes in superkmer mode: the
                // word drain above saw nothing, so expand the received
                // spans into k-mer words here and sort the whole partition
                // (spans arrive unscattered — there is no top-byte
                // pre-partition to exploit).
                if superkmer.is_some() {
                    let canon = canonical == CanonicalMode::Canonical;
                    for rx in &srx {
                        for buf in rx.try_iter() {
                            unpack_spans(&buf, k, canon, &mut mine)
                                .expect("in-process span lanes are lossless");
                        }
                    }
                    hybrid_sort(&mut mine);
                }

                // Fused accumulate: fold the sorted partition straight
                // into output records, capacity reserved from a sampled
                // distinct-run estimate (runs never span buckets — equal
                // words share a bucket).
                let mut plain: Vec<KmerCount<W>> =
                    Vec::with_capacity(distinct_runs_estimate(&mine));
                for &w in &mine {
                    match plain.last_mut() {
                        Some(c) if c.kmer == w => c.count = c.count.saturating_add(1),
                        _ => plain.push(KmerCount::new(w, 1)),
                    }
                }
                drop(mine);

                let mut pairs: Vec<(W, u32)> = Vec::new();
                for rx in &prx {
                    for batch in rx.try_iter() {
                        pairs.extend(batch);
                    }
                }
                lsd_radix_sort_by(&mut pairs, |p| p.0);
                let heavy: Vec<KmerCount<W>> = accumulate_weighted(&pairs)
                    .into_iter()
                    .map(|(w, c)| KmerCount::new(w, c))
                    .collect();
                *outputs[t].lock().unwrap() = Some(merge_sorted_counts(&plain, &heavy));
                if let Some(ev) = ev {
                    *traces[t].lock().unwrap() = ev;
                }
            });
        }
    });

    let mut counts: Vec<KmerCount<W>> = outputs
        .iter()
        .flat_map(|m| m.lock().unwrap().take().expect("every worker published"))
        .collect();
    counts.sort_unstable_by_key(|c| c.kmer);

    let trace = trace.then(|| {
        traces
            .iter()
            .flat_map(|m| std::mem::take(&mut *m.lock().unwrap()))
            .collect()
    });

    ThreadedRun {
        counts,
        elapsed: start.elapsed(),
        threads,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dakc_kmer::kmers_of_read;
    use std::collections::BTreeMap;

    fn reference(reads: &ReadSet, k: usize, mode: CanonicalMode) -> Vec<KmerCount<u64>> {
        let mut h: BTreeMap<u64, u32> = BTreeMap::new();
        for r in reads.iter() {
            for w in kmers_of_read::<u64>(r, k, mode) {
                *h.entry(w).or_default() += 1;
            }
        }
        h.into_iter().map(|(w, c)| KmerCount::new(w, c)).collect()
    }

    fn random_reads(n: usize, m: usize, seed: u64) -> ReadSet {
        use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
        let g = generate_genome(&GenomeSpec { bases: 4 * n * m / 3 + 200, repeats: None }, seed);
        simulate_reads(
            &g,
            &ReadSimConfig { read_len: m, num_reads: n, error_rate: 0.01, both_strands: false },
            seed,
        )
    }

    #[test]
    fn matches_reference_various_thread_counts() {
        let reads = random_reads(300, 80, 1);
        let want = reference(&reads, 21, CanonicalMode::Forward);
        for t in [1, 2, 4, 7] {
            let run = count_kmers_threaded::<u64>(&reads, 21, CanonicalMode::Forward, t, None);
            assert_eq!(run.counts, want, "threads = {t}");
        }
    }

    #[test]
    fn tiny_route_batches_exercise_many_handoffs() {
        let reads = random_reads(150, 70, 9);
        for mode in [CanonicalMode::Forward, CanonicalMode::Canonical] {
            let want = reference(&reads, 17, mode);
            for rb in [1usize, 7, 64] {
                let opts = ThreadedOpts { route_batch: rb, ..ThreadedOpts::default() };
                let run =
                    count_kmers_threaded_opts::<u64>(&reads, 17, mode, 4, Some(256), &opts);
                assert_eq!(run.counts, want, "route_batch = {rb}, mode = {mode:?}");
            }
        }
    }

    #[test]
    fn l3_mode_matches_reference() {
        let reads = random_reads(200, 100, 2);
        let want = reference(&reads, 15, CanonicalMode::Forward);
        let run = count_kmers_threaded::<u64>(&reads, 15, CanonicalMode::Forward, 4, Some(512));
        assert_eq!(run.counts, want);
    }

    #[test]
    fn superkmer_mode_matches_reference() {
        let reads = random_reads(300, 80, 5);
        for mode in [CanonicalMode::Forward, CanonicalMode::Canonical] {
            let want = reference(&reads, 21, mode);
            for t in [1, 2, 4] {
                let opts = ThreadedOpts { superkmer: Some(7), ..ThreadedOpts::default() };
                let run = count_kmers_threaded_opts::<u64>(&reads, 21, mode, t, None, &opts);
                assert_eq!(run.counts, want, "threads = {t}, mode = {mode:?}");
            }
        }
    }

    #[test]
    fn canonical_mode_counts_strands_together() {
        let mut reads = ReadSet::new();
        reads.push(b"ACGTT");
        reads.push(b"AACGT"); // revcomp of the first
        let run = count_kmers_threaded::<u64>(&reads, 5, CanonicalMode::Canonical, 2, None);
        assert_eq!(run.counts.len(), 1);
        assert_eq!(run.counts[0].count, 2);
    }

    #[test]
    fn u128_words_large_k() {
        let reads = random_reads(100, 90, 3);
        let k = 41; // needs u128
        let run = count_kmers_threaded::<u128>(&reads, k, CanonicalMode::Forward, 3, None);
        let total: u64 = run.counts.iter().map(|c| c.count as u64).sum();
        assert_eq!(total as usize, reads.total_kmers(k));
    }

    #[test]
    fn small_k_single_byte_window() {
        // 2k ≤ 8 bits: the bucket byte is the whole key, so phase 2's
        // bucket assembly must already be sorted with no sort pass.
        let reads = random_reads(60, 40, 4);
        for k in [1usize, 3, 4] {
            let want = reference(&reads, k, CanonicalMode::Forward);
            let run = count_kmers_threaded::<u64>(&reads, k, CanonicalMode::Forward, 3, None);
            assert_eq!(run.counts, want, "k = {k}");
        }
    }

    #[test]
    fn empty_input() {
        let reads = ReadSet::new();
        let run = count_kmers_threaded::<u64>(&reads, 21, CanonicalMode::Forward, 4, None);
        assert!(run.counts.is_empty());
    }
}
