//! The real shared-memory engine: DAKC on OS threads.
//!
//! On a single node the paper's runtime "detects when two PEs are
//! colocated … and converts the asynchronous messages into memcpy calls"
//! (§VI-B), which is what makes DAKC competitive with — and ≈2× faster
//! than — KMC3 on one node. This engine is that configuration, built
//! directly on scoped threads:
//!
//! * every thread parses its block of reads and routes k-mers to their
//!   owner thread through lock-protected inboxes, batched so each lock
//!   acquisition moves a buffer, not a k-mer (the L2 idea in memcpy form);
//! * an optional L3 stage pre-accumulates heavy hitters locally before
//!   routing, shipping `{k-mer, count}` pairs instead of repeats;
//! * after a phase barrier every owner sorts and accumulates its partition
//!   independently (parallelism across owners).
//!
//! All synchronization is two `std::sync::Barrier` waits — the same
//! synchronization structure as the distributed algorithm.

use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

use dakc_io::ReadSet;
use dakc_kmer::{
    counts::merge_sorted_counts, kmers_of_read, owner_pe, CanonicalMode, KmerCount, KmerWord,
};
use dakc_sim::telemetry::Event;
use dakc_sim::{EventKind, FlowSampler};
use dakc_sort::{accumulate, accumulate_weighted, hybrid_sort, lsd_radix_sort_by, RadixKey};

/// Result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedRun<W> {
    /// The global histogram, sorted by k-mer.
    pub counts: Vec<KmerCount<W>>,
    /// Wall-clock time of the counting (excludes input generation).
    pub elapsed: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Flight-recorder events (timestamps are wall-clock seconds since
    /// run start; `pe` is the worker thread id), present when tracing was
    /// requested via [`count_kmers_threaded_traced`]. Events are grouped
    /// by worker, each worker's stream in chronological order.
    pub trace: Option<Vec<Event>>,
}

/// Per-owner routing buffer flushed into the inbox when full (the memcpy
/// analogue of an L2 packet).
const ROUTE_BATCH: usize = 1024;

/// Observability options for [`count_kmers_threaded_opts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedOpts {
    /// Record flight-recorder events into [`ThreadedRun::trace`].
    pub trace: bool,
    /// Causal flow sampling: tag one in `N` route-buffer opens and record
    /// its wall-clock residency (pack wait + inbox drain wait) when the
    /// owner consumes it in phase 2. `None` disables flow tracing.
    pub trace_sample: Option<u32>,
}

/// Counts k-mers with `threads` workers. `l3_buffer` enables the
/// heavy-hitter pre-accumulation stage with the given `C3`.
pub fn count_kmers_threaded<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    canonical: CanonicalMode,
    threads: usize,
    l3_buffer: Option<usize>,
) -> ThreadedRun<W> {
    count_kmers_threaded_traced(reads, k, canonical, threads, l3_buffer, false)
}

/// Like [`count_kmers_threaded`], but when `trace` is set each worker
/// records flight-recorder events (inbox batch flushes, L3 drains, the
/// phase barrier, phase transitions) into a thread-local buffer, merged
/// into [`ThreadedRun::trace`] after the run. Timestamps are wall-clock
/// seconds since run start — unlike simulator traces they are *not*
/// byte-reproducible across runs.
pub fn count_kmers_threaded_traced<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    canonical: CanonicalMode,
    threads: usize,
    l3_buffer: Option<usize>,
    trace: bool,
) -> ThreadedRun<W> {
    count_kmers_threaded_opts(
        reads,
        k,
        canonical,
        threads,
        l3_buffer,
        &ThreadedOpts { trace, trace_sample: None },
    )
}

/// Like [`count_kmers_threaded_traced`], with causal flow tracing: when
/// [`ThreadedOpts::trace_sample`] is set, a sampled route-buffer open mints
/// a flow id ([`EventKind::FlowSend`] at the flush into the owner's inbox)
/// that the owner closes with an [`EventKind::FlowRecv`] when phase 2
/// drains the inbox. The wall-clock analogue of the simulator's virtual
/// residencies: the pack wait lands in `l2_s`, the inbox wait in
/// `drain_s`, and the memcpy stages (`l1/l0/net`) are zero-width.
pub fn count_kmers_threaded_opts<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    canonical: CanonicalMode,
    threads: usize,
    l3_buffer: Option<usize>,
    opts: &ThreadedOpts,
) -> ThreadedRun<W> {
    let trace = opts.trace;
    let trace_sample = opts.trace_sample;
    assert!(threads >= 1);
    assert!((1..=W::MAX_K).contains(&k), "k out of range");
    let start = Instant::now();

    let inboxes: Vec<Mutex<Vec<W>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let pair_inboxes: Vec<Mutex<Vec<(W, u32)>>> =
        (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    // Flow sidecars per owner: (flow id, src worker, open time, send time).
    // Like the simulator's Msg sidecar, these ride out of band — flow
    // tracing never changes what the inboxes carry.
    type FlowEntry = (u64, u32, f64, f64);
    let flow_inboxes: Vec<Mutex<Vec<FlowEntry>>> =
        (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let phase_barrier = Barrier::new(threads);
    let outputs: Vec<Mutex<Option<Vec<KmerCount<W>>>>> =
        (0..threads).map(|_| Mutex::new(None)).collect();
    let traces: Vec<Mutex<Vec<Event>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();

    std::thread::scope(|s| {
        for t in 0..threads {
            let inboxes = &inboxes;
            let pair_inboxes = &pair_inboxes;
            let flow_inboxes = &flow_inboxes;
            let phase_barrier = &phase_barrier;
            let outputs = &outputs;
            let traces = &traces;
            let start = &start;
            s.spawn(move || {
                let mut ev: Option<Vec<Event>> = trace.then(Vec::new);
                let record = |ev: &mut Option<Vec<Event>>, kind: EventKind| {
                    if let Some(ev) = ev {
                        ev.push(Event {
                            ts: start.elapsed().as_secs_f64(),
                            pe: t as u32,
                            kind,
                        });
                    }
                };
                record(&mut ev, EventKind::Phase { phase: 0 });

                // --- Phase 1: parse and route ---
                let mut route: Vec<Vec<W>> = vec![Vec::with_capacity(ROUTE_BATCH); threads];
                let mut pair_route: Vec<Vec<(W, u32)>> = vec![Vec::new(); threads];
                let mut l3: Vec<W> = Vec::new();
                let word_bytes = std::mem::size_of::<W>();
                let mut sampler = FlowSampler::new(t as u32, trace_sample);
                // Open flow per route buffer: (flow id, open time).
                let mut route_flow: Vec<Option<(u64, f64)>> = vec![None; threads];

                // Flow-open hook: one route-buffer open (empty → first
                // push) counts once on the sampler.
                let open_flow = |owner: usize,
                                 route: &[Vec<W>],
                                 route_flow: &mut [Option<(u64, f64)>],
                                 sampler: &mut FlowSampler| {
                    if sampler.enabled() && route[owner].is_empty() {
                        if let Some(flow) = sampler.sample() {
                            route_flow[owner] = Some((flow, start.elapsed().as_secs_f64()));
                        }
                    }
                };
                let flush_owner = |owner: usize,
                                   route: &mut Vec<Vec<W>>,
                                   route_flow: &mut [Option<(u64, f64)>],
                                   ev: &mut Option<Vec<Event>>| {
                    let buf = &mut route[owner];
                    if !buf.is_empty() {
                        record(ev, EventKind::MsgSend {
                            dst: owner as u32,
                            tag: 0,
                            bytes: (buf.len() * word_bytes) as u32,
                        });
                        if let Some((flow, t_open)) = route_flow[owner].take() {
                            let t_send = start.elapsed().as_secs_f64();
                            record(ev, EventKind::FlowSend {
                                flow,
                                channel: 0,
                                dst: owner as u32,
                            });
                            flow_inboxes[owner]
                                .lock()
                                .unwrap()
                                .push((flow, t as u32, t_open, t_send));
                        }
                        let mut inbox = inboxes[owner].lock().unwrap();
                        inbox.append(buf);
                        let depth = inbox.len() as u32;
                        drop(inbox);
                        // Depth of the receiver's inbox in staged words —
                        // the memcpy-engine analogue of the simulator's
                        // pending-message gauge.
                        record(ev, EventKind::QueueDepth { depth });
                    }
                };
                let drain_l3 = |l3: &mut Vec<W>,
                                route: &mut Vec<Vec<W>>,
                                pair_route: &mut Vec<Vec<(W, u32)>>,
                                route_flow: &mut [Option<(u64, f64)>],
                                sampler: &mut FlowSampler,
                                ev: &mut Option<Vec<Event>>| {
                    record(ev, EventKind::L3Flush {
                        occupancy: l3.len() as u32,
                        cap: l3_buffer.unwrap_or(l3.len()) as u32,
                    });
                    hybrid_sort(l3.as_mut_slice());
                    for (w, c) in accumulate(l3) {
                        let owner = owner_pe(w, threads);
                        if c > 2 {
                            pair_route[owner].push((w, c));
                        } else {
                            for _ in 0..c {
                                open_flow(owner, route, route_flow, sampler);
                                route[owner].push(w);
                                if route[owner].len() >= ROUTE_BATCH {
                                    flush_owner(owner, route, route_flow, ev);
                                }
                            }
                        }
                    }
                    l3.clear();
                };

                for i in reads.pe_range(t, threads) {
                    for w in kmers_of_read::<W>(reads.get(i), k, canonical) {
                        match l3_buffer {
                            Some(c3) => {
                                l3.push(w);
                                if l3.len() >= c3 {
                                    drain_l3(
                                        &mut l3,
                                        &mut route,
                                        &mut pair_route,
                                        &mut route_flow,
                                        &mut sampler,
                                        &mut ev,
                                    );
                                }
                            }
                            None => {
                                let owner = owner_pe(w, threads);
                                open_flow(owner, &route, &mut route_flow, &mut sampler);
                                route[owner].push(w);
                                if route[owner].len() >= ROUTE_BATCH {
                                    flush_owner(owner, &mut route, &mut route_flow, &mut ev);
                                }
                            }
                        }
                    }
                }
                if !l3.is_empty() {
                    drain_l3(
                        &mut l3,
                        &mut route,
                        &mut pair_route,
                        &mut route_flow,
                        &mut sampler,
                        &mut ev,
                    );
                }
                for owner in 0..threads {
                    flush_owner(owner, &mut route, &mut route_flow, &mut ev);
                    if !pair_route[owner].is_empty() {
                        record(&mut ev, EventKind::MsgSend {
                            dst: owner as u32,
                            tag: 1,
                            bytes: (pair_route[owner].len() * (word_bytes + 4)) as u32,
                        });
                        pair_inboxes[owner].lock().unwrap().append(&mut pair_route[owner]);
                    }
                }

                // --- GLOBAL BARRIER (paper's phase boundary) ---
                record(&mut ev, EventKind::BarrierEnter);
                let entered = start.elapsed().as_secs_f64();
                phase_barrier.wait();
                record(&mut ev, EventKind::BarrierExit {
                    waited_s: start.elapsed().as_secs_f64() - entered,
                });
                record(&mut ev, EventKind::Phase { phase: 1 });

                // --- Phase 2: sort + accumulate my partition ---
                let mut mine: Vec<W> = std::mem::take(&mut *inboxes[t].lock().unwrap());
                // Close any flows routed to this worker: the barrier is the
                // drain point, so drain residency is barrier-exit → now.
                let closing = std::mem::take(&mut *flow_inboxes[t].lock().unwrap());
                if !closing.is_empty() {
                    let now = start.elapsed().as_secs_f64();
                    for (flow, src, t_open, t_send) in closing {
                        record(&mut ev, EventKind::FlowRecv {
                            flow,
                            channel: 0,
                            src,
                            l3_s: 0.0,
                            l2_s: t_send - t_open,
                            l1_s: 0.0,
                            l0_s: 0.0,
                            net_s: 0.0,
                            drain_s: now - t_send,
                            e2e_s: now - t_open,
                        });
                    }
                }
                hybrid_sort(&mut mine);
                let plain: Vec<KmerCount<W>> = accumulate(&mine)
                    .into_iter()
                    .map(|(w, c)| KmerCount::new(w, c))
                    .collect();
                let mut pairs: Vec<(W, u32)> = std::mem::take(&mut *pair_inboxes[t].lock().unwrap());
                lsd_radix_sort_by(&mut pairs, |p| p.0);
                let heavy: Vec<KmerCount<W>> = accumulate_weighted(&pairs)
                    .into_iter()
                    .map(|(w, c)| KmerCount::new(w, c))
                    .collect();
                *outputs[t].lock().unwrap() = Some(merge_sorted_counts(&plain, &heavy));
                if let Some(ev) = ev {
                    *traces[t].lock().unwrap() = ev;
                }
            });
        }
    });

    let mut counts: Vec<KmerCount<W>> = outputs
        .iter()
        .flat_map(|m| m.lock().unwrap().take().expect("every worker published"))
        .collect();
    counts.sort_unstable_by_key(|c| c.kmer);

    let trace = trace.then(|| {
        traces
            .iter()
            .flat_map(|m| std::mem::take(&mut *m.lock().unwrap()))
            .collect()
    });

    ThreadedRun {
        counts,
        elapsed: start.elapsed(),
        threads,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn reference(reads: &ReadSet, k: usize, mode: CanonicalMode) -> Vec<KmerCount<u64>> {
        let mut h: BTreeMap<u64, u32> = BTreeMap::new();
        for r in reads.iter() {
            for w in kmers_of_read::<u64>(r, k, mode) {
                *h.entry(w).or_default() += 1;
            }
        }
        h.into_iter().map(|(w, c)| KmerCount::new(w, c)).collect()
    }

    fn random_reads(n: usize, m: usize, seed: u64) -> ReadSet {
        use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
        let g = generate_genome(&GenomeSpec { bases: 4 * n * m / 3 + 200, repeats: None }, seed);
        simulate_reads(
            &g,
            &ReadSimConfig { read_len: m, num_reads: n, error_rate: 0.01, both_strands: false },
            seed,
        )
    }

    #[test]
    fn matches_reference_various_thread_counts() {
        let reads = random_reads(300, 80, 1);
        let want = reference(&reads, 21, CanonicalMode::Forward);
        for t in [1, 2, 4, 7] {
            let run = count_kmers_threaded::<u64>(&reads, 21, CanonicalMode::Forward, t, None);
            assert_eq!(run.counts, want, "threads = {t}");
        }
    }

    #[test]
    fn l3_mode_matches_reference() {
        let reads = random_reads(200, 100, 2);
        let want = reference(&reads, 15, CanonicalMode::Forward);
        let run = count_kmers_threaded::<u64>(&reads, 15, CanonicalMode::Forward, 4, Some(512));
        assert_eq!(run.counts, want);
    }

    #[test]
    fn canonical_mode_counts_strands_together() {
        let mut reads = ReadSet::new();
        reads.push(b"ACGTT");
        reads.push(b"AACGT"); // revcomp of the first
        let run = count_kmers_threaded::<u64>(&reads, 5, CanonicalMode::Canonical, 2, None);
        assert_eq!(run.counts.len(), 1);
        assert_eq!(run.counts[0].count, 2);
    }

    #[test]
    fn u128_words_large_k() {
        let reads = random_reads(100, 90, 3);
        let k = 41; // needs u128
        let run = count_kmers_threaded::<u128>(&reads, k, CanonicalMode::Forward, 3, None);
        let total: u64 = run.counts.iter().map(|c| c.count as u64).sum();
        assert_eq!(total as usize, reads.total_kmers(k));
    }

    #[test]
    fn empty_input() {
        let reads = ReadSet::new();
        let run = count_kmers_threaded::<u64>(&reads, 21, CanonicalMode::Forward, 4, None);
        assert!(run.counts.is_empty());
    }
}
