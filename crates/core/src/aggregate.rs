//! The application-side aggregation cascade: Algorithm 4 (`AsyncAdd`).
//!
//! ```text
//! AsyncAdd(kmer)
//!   └─ L3: append to a C3-element buffer; when full, sort + accumulate it
//!      locally. Heavy hitters (count > 2) travel as {kmer, count} pairs on
//!      the HEAVY channel; light k-mers re-expand into the NORMAL path.
//!       └─ L2: pack C2 same-destination k-mers (or C2/2 heavy pairs) into
//!          one conveyor packet, amortizing the 32-bit routing header.
//!           └─ L1/L0: dakc-conveyors (actor staging + routed PUTs).
//! ```
//!
//! The receiving side (`ProcessReceiveBuffer` in the paper) decodes packets
//! into a [`ReceiveStore`]: plain k-mers and pre-accumulated pairs, which
//! phase 2 sorts and merges.

use std::collections::HashMap;

use dakc_conveyors::{Actor, ActorConfig, ConvStats, ConveyorConfig, Fabric};
use dakc_kmer::{owner_pe, pack_span, packed_span_bytes, unpack_spans, KmerWord, SpanDecodeError};
use dakc_sim::telemetry::metrics::PCT_BOUNDS;
use dakc_sim::{EventKind, FlowSampler, FlowTag, PeId};
use dakc_sort::{accumulate, hybrid_sort, RadixKey};

use crate::config::DakcConfig;
use crate::costs;

/// Channel id for packed plain k-mers.
pub const CH_NORMAL: u8 = 0;
/// Channel id for packed `{k-mer, count}` heavy-hitter pairs.
pub const CH_HEAVY: u8 = 1;
/// Channel id for single unpacked k-mers (L2 disabled).
pub const CH_SINGLE: u8 = 2;
/// Channel id for packed super-k-mer spans (L2.5, `--superkmer`).
pub const CH_SUPER: u8 = 3;

/// What a PE has received so far: the owner-side `T` array of
/// Algorithm 3/4, split into plain k-mers and pre-accumulated pairs.
///
/// With [`ReceiveStore::track_sources`] on (rank recovery), every
/// delivery batch is indexed by its source rank so that a dead rank's
/// contributions can be [`ReceiveStore::purge_source`]d and re-received
/// from its replacement. The index is a segment list (one entry per
/// contiguous same-source delivery run), not a per-record tag, so the
/// tracking overhead is proportional to packets, not k-mers.
#[derive(Debug, Clone, Default)]
pub struct ReceiveStore<W> {
    /// Individual k-mer occurrences (count 1 each).
    pub plain: Vec<W>,
    /// Pre-accumulated heavy-hitter deliveries.
    pub pairs: Vec<(W, u32)>,
    /// `(src, plain watermark, pairs watermark)` after each delivery run,
    /// recorded only while tracking.
    segs: Vec<(PeId, usize, usize)>,
    track: bool,
}

impl<W> ReceiveStore<W> {
    /// Total occurrences represented.
    pub fn total_occurrences(&self) -> u64 {
        self.plain.len() as u64 + self.pairs.iter().map(|&(_, c)| c as u64).sum::<u64>()
    }

    /// Turns on source tracking (call before any records arrive).
    pub fn track_sources(&mut self) {
        assert!(
            self.plain.is_empty() && self.pairs.is_empty(),
            "source tracking must start before the first delivery"
        );
        self.track = true;
    }

    /// Records that everything appended since the last note came from
    /// `src`. Called by the delivery path after each decoded packet.
    pub fn note_delivery(&mut self, src: PeId) {
        if !self.track {
            return;
        }
        let (p, q) = (self.plain.len(), self.pairs.len());
        let (lp, lq) = self.segs.last().map(|&(_, a, b)| (a, b)).unwrap_or((0, 0));
        if (p, q) == (lp, lq) {
            return; // nothing appended by this delivery
        }
        match self.segs.last_mut() {
            // Extend a same-source run instead of growing the index.
            Some(seg) if seg.0 == src => {
                seg.1 = p;
                seg.2 = q;
            }
            _ => self.segs.push((src, p, q)),
        }
    }

    /// Drops every record delivered by `src`, returning how many
    /// occurrences were discarded. Requires source tracking; the caller
    /// re-receives the purged content from the rank's replacement.
    pub fn purge_source(&mut self, src: PeId) -> u64
    where
        W: Copy,
    {
        assert!(self.track, "purge_source requires track_sources");
        let mut plain = Vec::with_capacity(self.plain.len());
        let mut pairs = Vec::with_capacity(self.pairs.len());
        let mut segs = Vec::with_capacity(self.segs.len());
        let (mut pp, mut qq) = (0usize, 0usize);
        let mut purged = 0u64;
        for &(s, pe, qe) in &self.segs {
            if s == src {
                purged += (pe - pp) as u64;
                purged += self.pairs[qq..qe].iter().map(|&(_, c)| c as u64).sum::<u64>();
            } else {
                plain.extend_from_slice(&self.plain[pp..pe]);
                pairs.extend_from_slice(&self.pairs[qq..qe]);
                segs.push((s, plain.len(), pairs.len()));
            }
            pp = pe;
            qq = qe;
        }
        assert_eq!(
            (pp, qq),
            (self.plain.len(), self.pairs.len()),
            "untracked records in a source-tracked store"
        );
        self.plain = plain;
        self.pairs = pairs;
        self.segs = segs;
        purged
    }
}

/// Aggregation counters for the ablation experiments (Fig 12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggStats {
    /// k-mers passed to `AsyncAdd`.
    pub kmers_added: u64,
    /// L3 buffer sort+accumulate rounds.
    pub l3_flushes: u64,
    /// Heavy `{k-mer, count}` pairs shipped.
    pub heavy_pairs: u64,
    /// Occurrences compressed away by heavy-hitter pre-accumulation
    /// (`count − 1` summed over heavy pairs).
    pub occurrences_compressed: u64,
    /// NORMAL packets sent.
    pub normal_packets: u64,
    /// HEAVY packets sent.
    pub heavy_packets: u64,
    /// SINGLE packets sent (L2 disabled).
    pub single_packets: u64,
    /// SUPER span packets sent (`--superkmer`).
    pub super_packets: u64,
    /// Super-k-mer span records shipped.
    pub spans_shipped: u64,
    /// Span payload bytes shipped (length prefixes included).
    pub span_wire_bytes: u64,
    /// Bases the per-k-mer format would have shipped minus the bases the
    /// spans actually carried: `Σ (kmers·k − len)` over shipped spans.
    pub span_bases_saved: u64,
}

/// The per-PE sender-side aggregation state.
#[derive(Debug)]
pub struct Aggregator<W> {
    cfg: DakcConfig,
    me: PeId,
    num_pes: usize,
    actor: Actor,
    l3: Vec<W>,
    l2n: HashMap<PeId, Vec<W>>,
    l2h: HashMap<PeId, Vec<(W, u32)>>,
    /// Per-destination encoded span buffers (L2.5, `--superkmer`): packed
    /// wire records accumulate here until the packet budget fills.
    l2s: HashMap<PeId, Vec<u8>>,
    stats: AggStats,
    word_bytes: usize,
    /// Deterministic 1-in-N flow sampler (disabled unless
    /// [`DakcConfig::trace_sample`] is set).
    sampler: FlowSampler,
    /// Open flow per NORMAL L2 destination buffer (sampled opens only).
    fl2n: HashMap<PeId, FlowTag>,
    /// Open flow per HEAVY L2 destination buffer (sampled opens only).
    fl2h: HashMap<PeId, FlowTag>,
    /// Open flow per SUPER span destination buffer (sampled opens only).
    fl2s: HashMap<PeId, FlowTag>,
    /// First span-decode failure observed while servicing arrivals; the
    /// engines surface it as a typed wire error instead of a panic.
    decode_err: Option<SpanDecodeError>,
    /// Virtual time the current L3 batch opened (first k-mer pushed);
    /// flows opened while it accumulates inherit it as their `t_open`.
    l3_open: Option<f64>,
}

impl<W: KmerWord + RadixKey> Aggregator<W> {
    /// Builds the cascade for this PE and registers its buffer memory.
    pub fn new<F: Fabric>(cfg: DakcConfig, ctx: &mut F) -> Self {
        cfg.validate::<W>();
        let actor_cfg = ActorConfig {
            c1_packets: cfg.c1_packets,
            conveyor: ConveyorConfig {
                protocol: cfg.protocol,
                c0_bytes: cfg.c0_bytes,
                channels: cfg.channels::<W>(),
                channel_names: vec!["normal", "heavy", "single", "super"],
            },
        };
        let actor = Actor::new(actor_cfg, ctx);
        let num_pes = ctx.num_pes();
        ctx.mem_alloc(cfg.app_layer_bytes::<W>(num_pes));
        let word_bytes = cfg.kmer_bytes::<W>();
        let sampler = FlowSampler::new(ctx.pe() as u32, cfg.trace_sample);
        Self {
            cfg,
            me: ctx.pe(),
            num_pes,
            actor,
            l3: Vec::new(),
            l2n: HashMap::new(),
            l2h: HashMap::new(),
            l2s: HashMap::new(),
            stats: AggStats::default(),
            word_bytes,
            sampler,
            fl2n: HashMap::new(),
            fl2h: HashMap::new(),
            fl2s: HashMap::new(),
            decode_err: None,
            l3_open: None,
        }
    }

    /// Aggregation counters.
    pub fn stats(&self) -> AggStats {
        self.stats
    }

    /// The conveyor counters underneath.
    pub fn conveyor_stats(&self) -> ConvStats {
        self.actor.conveyor_stats()
    }

    /// Algorithm 3's `AsyncAdd`: route one parsed k-mer toward its owner.
    pub fn async_add<F: Fabric>(&mut self, ctx: &mut F, kmer: W) {
        self.stats.kmers_added += 1;
        if self.cfg.enable_l3 {
            if self.sampler.enabled() && self.l3.is_empty() {
                self.l3_open = Some(ctx.now());
            }
            self.l3.push(kmer);
            ctx.charge_ops(1);
            if self.l3.len() >= self.cfg.c3 {
                self.flush_l3(ctx);
            }
        } else {
            self.add_to_l2(ctx, kmer, 1);
        }
    }

    /// L2.5 `AsyncAdd`: route one super-k-mer span toward the owner of
    /// its minimizer. Every k-mer the span carries belongs to that owner
    /// (the minimizer is a pure function of k-mer content), so the owner
    /// partition stays disjoint and phase 2 is unchanged.
    ///
    /// Bypasses L3 — pre-accumulation is per-k-mer, and expanding spans
    /// locally just to re-compress them would forfeit the wire savings.
    pub fn async_add_span<F: Fabric>(&mut self, ctx: &mut F, minimizer: u64, span: &[u8]) {
        debug_assert!(self.cfg.superkmer);
        let kmers = (span.len() + 1 - self.cfg.k) as u64;
        let saved = kmers * self.cfg.k as u64 - span.len() as u64;
        self.stats.kmers_added += kmers;
        self.stats.spans_shipped += 1;
        self.stats.span_bases_saved += saved;
        ctx.metrics().inc("net.superkmer.spans", 1);
        ctx.metrics().inc("net.superkmer.bases_saved", saved);
        let dst = owner_pe(minimizer, self.num_pes);
        let budget = self.cfg.super_payload::<W>();
        let record = packed_span_bytes(span.len());
        if self.l2s.get(&dst).is_some_and(|buf| buf.len() + record > budget) {
            self.ship_super(ctx, dst);
        }
        if self.sampler.enabled() && !self.l2s.contains_key(&dst) {
            if let Some(tag) = self.open_flow(ctx, CH_SUPER) {
                self.fl2s.insert(dst, tag);
            }
        }
        let buf = self.l2s.entry(dst).or_default();
        pack_span(buf, span);
        ctx.charge_ops(span.len() as u64 / 8 + 1);
        if buf.len() >= budget {
            self.ship_super(ctx, dst);
        }
    }

    /// Encodes and sends one SUPER span packet for `dst`.
    fn ship_super<F: Fabric>(&mut self, ctx: &mut F, dst: PeId) {
        let Some(payload) = self.l2s.remove(&dst) else {
            return;
        };
        if payload.is_empty() {
            return;
        }
        ctx.charge_ops(payload.len() as u64 / 8 + 1);
        self.stats.super_packets += 1;
        self.stats.span_wire_bytes += payload.len() as u64;
        let budget = self.cfg.super_payload::<W>().max(1);
        let fill_pct = ((payload.len() * 100) / budget).min(100) as u8;
        ctx.metrics().observe("l2.packet_fill_pct", PCT_BOUNDS, fill_pct as f64);
        ctx.metrics().inc("net.superkmer.bytes_sent", payload.len() as u64);
        ctx.trace(|| EventKind::L2Ship {
            dst: dst as u32,
            records: payload.len() as u32,
            fill_pct,
            heavy: false,
        });
        let flow = Self::stamp_ship(ctx, self.fl2s.remove(&dst), dst);
        self.actor.send_flow(ctx, dst, CH_SUPER, &payload, flow);
    }

    /// Sorts and accumulates the L3 buffer, then forwards the results
    /// (`AddToL3Buffer`'s full branch).
    fn flush_l3<F: Fabric>(&mut self, ctx: &mut F) {
        if self.l3.is_empty() {
            return;
        }
        self.stats.l3_flushes += 1;
        let mut buf = std::mem::take(&mut self.l3);
        let occupancy = buf.len() as u32;
        let cap = self.cfg.c3 as u32;
        ctx.metrics().observe(
            "l3.flush_occupancy_pct",
            PCT_BOUNDS,
            ((occupancy as u64 * 100) / cap.max(1) as u64).min(100) as f64,
        );
        ctx.trace(|| EventKind::L3Flush { occupancy, cap });
        // Cache-aware sort cost: a cache-resident L3 buffer sorts without
        // re-streaming main memory; an oversized one pays extra scatter
        // levels. This is the "very high C3 values incur additional
        // sorting overheads" effect of Fig 13b.
        costs::charge_hybrid_sort(ctx, buf.len() as u64, self.word_bytes as u64);
        hybrid_sort(&mut buf);
        let accumulated = accumulate(&buf);
        costs::charge_accumulate(ctx, buf.len() as u64, self.word_bytes as u64);
        for (kmer, count) in accumulated {
            self.add_to_l2(ctx, kmer, count);
        }
        self.l3_open = None;
    }

    /// Flow-open hook for one L2 packet-buffer open (empty → nonempty):
    /// counts the open on the sampler and mints a tag when selected. The
    /// tag's `t_open` reaches back to the current L3 batch's open time, so
    /// the L3 stage measures how long k-mers waited in pre-accumulation.
    fn open_flow<F: Fabric>(&mut self, ctx: &mut F, channel: u8) -> Option<FlowTag> {
        if !self.sampler.enabled() {
            return None;
        }
        let flow = self.sampler.sample()?;
        let now = ctx.now();
        let t_open = self.l3_open.unwrap_or(now);
        ctx.metrics().inc("flow.opened", 1);
        Some(FlowTag::open(flow, channel, self.me as u32, t_open, now))
    }

    /// `AddToL2Buffer`: pack toward the owner, splitting heavy hitters
    /// onto the HEAVY channel.
    fn add_to_l2<F: Fabric>(&mut self, ctx: &mut F, kmer: W, count: u32) {
        let dst = owner_pe(kmer, self.num_pes);
        if !self.cfg.enable_l2 {
            // L0–L1 mode: one k-mer per packet, `count` times.
            debug_assert_eq!(count, 1, "without L3 every add carries count 1");
            for _ in 0..count {
                let wire = self.encode_word(kmer);
                self.stats.single_packets += 1;
                // A SINGLE packet opens and ships in the same instant, so
                // its L3/L2 stages are zero-width.
                let opened = self.open_flow(ctx, CH_SINGLE);
                let flow = Self::stamp_ship(ctx, opened, dst);
                self.actor.send_flow(ctx, dst, CH_SINGLE, &wire, flow);
            }
            return;
        }
        if self.cfg.enable_l3 && count > 2 {
            self.stats.heavy_pairs += 1;
            self.stats.occurrences_compressed += count as u64 - 1;
            if self.sampler.enabled() && !self.l2h.contains_key(&dst) {
                if let Some(tag) = self.open_flow(ctx, CH_HEAVY) {
                    self.fl2h.insert(dst, tag);
                }
            }
            let buf = self.l2h.entry(dst).or_default();
            buf.push((kmer, count));
            ctx.charge_ops(2);
            if buf.len() >= self.cfg.c2 / 2 {
                self.ship_heavy(ctx, dst);
            }
        } else {
            // count ∈ {1, 2}: append `count` copies (Algorithm 4).
            for _ in 0..count {
                if self.sampler.enabled() && !self.l2n.contains_key(&dst) {
                    if let Some(tag) = self.open_flow(ctx, CH_NORMAL) {
                        self.fl2n.insert(dst, tag);
                    }
                }
                let buf = self.l2n.entry(dst).or_default();
                buf.push(kmer);
                ctx.charge_ops(1);
                if buf.len() >= self.cfg.c2 {
                    self.ship_normal(ctx, dst);
                }
            }
        }
    }

    fn encode_word(&self, w: W) -> Vec<u8> {
        w.to_u128().to_le_bytes()[..self.word_bytes].to_vec()
    }

    /// Encodes and sends one NORMAL packet for `dst`.
    fn ship_normal<F: Fabric>(&mut self, ctx: &mut F, dst: PeId) {
        let Some(buf) = self.l2n.remove(&dst) else {
            return;
        };
        if buf.is_empty() {
            return;
        }
        debug_assert!(buf.len() <= self.cfg.c2);
        let payload = encode_normal_packet(&buf, self.word_bytes);
        ctx.charge_ops(payload.len() as u64 / 8 + 1);
        self.stats.normal_packets += 1;
        let fill_pct = ((buf.len() * 100) / self.cfg.c2.max(1)).min(100) as u8;
        let records = buf.len() as u32;
        ctx.metrics()
            .observe("l2.packet_fill_pct", PCT_BOUNDS, fill_pct as f64);
        ctx.trace(|| EventKind::L2Ship {
            dst: dst as u32,
            records,
            fill_pct,
            heavy: false,
        });
        let flow = Self::stamp_ship(ctx, self.fl2n.remove(&dst), dst);
        self.actor.send_flow(ctx, dst, CH_NORMAL, &payload, flow);
    }

    /// Stamps the L2→L1 hand-off time on a shipping packet's flow tag (if
    /// any) and emits the Chrome-trace flow-start event.
    fn stamp_ship<F: Fabric>(ctx: &mut F, flow: Option<FlowTag>, dst: PeId) -> Option<FlowTag> {
        let mut tag = flow?;
        tag.t_l2_ship = ctx.now();
        let (fid, channel, fdst) = (tag.flow, tag.channel, dst as u32);
        ctx.trace(|| EventKind::FlowSend {
            flow: fid,
            channel,
            dst: fdst,
        });
        Some(tag)
    }

    /// Encodes and sends one HEAVY packet for `dst`.
    fn ship_heavy<F: Fabric>(&mut self, ctx: &mut F, dst: PeId) {
        let Some(buf) = self.l2h.remove(&dst) else {
            return;
        };
        if buf.is_empty() {
            return;
        }
        debug_assert!(buf.len() <= self.cfg.c2 / 2);
        let payload = encode_heavy_packet(&buf, self.word_bytes);
        ctx.charge_ops(payload.len() as u64 / 8 + 1);
        self.stats.heavy_packets += 1;
        let cap = (self.cfg.c2 / 2).max(1);
        let fill_pct = ((buf.len() * 100) / cap).min(100) as u8;
        let records = buf.len() as u32;
        ctx.metrics()
            .observe("l2.packet_fill_pct", PCT_BOUNDS, fill_pct as f64);
        ctx.trace(|| EventKind::L2Ship {
            dst: dst as u32,
            records,
            fill_pct,
            heavy: true,
        });
        let flow = Self::stamp_ship(ctx, self.fl2h.remove(&dst), dst);
        self.actor.send_flow(ctx, dst, CH_HEAVY, &payload, flow);
    }

    /// Polls and decodes arrived packets into `store`
    /// (`ProcessReceiveBuffer`). Returns the number of records processed
    /// (delivered here or relayed onward).
    pub fn progress<F: Fabric>(&mut self, ctx: &mut F, store: &mut ReceiveStore<W>) -> u64 {
        let before = self.actor.conveyor_stats();
        let word_bytes = self.word_bytes;
        let (k, canonical) = (self.cfg.k, self.cfg.canonical == dakc_kmer::CanonicalMode::Canonical);
        let decode_err = &mut self.decode_err;
        let mut decoded_ops = 0u64;
        let mut expanded_kmers = 0u64;
        {
            let mut handler = |src: PeId, channel: u8, payload: &[u8]| {
                if channel == CH_SUPER {
                    // Fallible by design: a corrupt span stream latches a
                    // typed error for the engine instead of panicking.
                    match unpack_spans(payload, k, canonical, &mut store.plain) {
                        Ok(sum) => expanded_kmers += sum.kmers,
                        Err(e) => {
                            if decode_err.is_none() {
                                *decode_err = Some(e);
                            }
                        }
                    }
                } else {
                    decode_packet(channel, payload, word_bytes, store);
                }
                // No-op unless the store tracks sources (rank recovery).
                store.note_delivery(src);
                decoded_ops += payload.len() as u64 / 8 + 1;
            };
            self.actor.progress(ctx, &mut handler);
        }
        ctx.charge_ops(decoded_ops);
        if expanded_kmers > 0 {
            costs::charge_span_expand(ctx, expanded_kmers, word_bytes as u64);
        }
        let after = self.actor.conveyor_stats();
        (after.items_delivered - before.items_delivered)
            + (after.items_forwarded - before.items_forwarded)
    }

    /// Flushes every level (L3 → L2 → L1 → L0) and enters draining mode;
    /// call once parsing is finished, immediately before the global
    /// barrier.
    pub fn flush<F: Fabric>(&mut self, ctx: &mut F) {
        if self.cfg.enable_l3 {
            self.flush_l3(ctx);
        }
        // Deterministic partial-buffer flush order.
        let mut heavy_dsts: Vec<PeId> = self.l2h.keys().copied().collect();
        heavy_dsts.sort_unstable();
        for dst in heavy_dsts {
            self.ship_heavy(ctx, dst);
        }
        let mut normal_dsts: Vec<PeId> = self.l2n.keys().copied().collect();
        normal_dsts.sort_unstable();
        for dst in normal_dsts {
            self.ship_normal(ctx, dst);
        }
        let mut super_dsts: Vec<PeId> = self.l2s.keys().copied().collect();
        super_dsts.sort_unstable();
        for dst in super_dsts {
            self.ship_super(ctx, dst);
        }
        self.actor.begin_drain(ctx);
    }

    /// Drops every not-yet-shipped record destined for `dead` from every
    /// cascade level (L3 k-mers it owns, its L2 packet buffers, L1 staged
    /// packets, L0 send buffers), returning how many k-mer occurrences
    /// were discarded. Recovery replay: shipping this content to the
    /// rank's replacement would double-count it against the
    /// deterministically re-extracted replay, so it is purged first.
    pub fn purge_dest<F: Fabric>(&mut self, ctx: &mut F, dead: PeId) -> u64 {
        let n = self.num_pes;
        let before = self.l3.len();
        self.l3.retain(|&w| owner_pe(w, n) != dead);
        let mut purged = (before - self.l3.len()) as u64;
        if let Some(buf) = self.l2n.remove(&dead) {
            purged += buf.len() as u64;
        }
        if let Some(buf) = self.l2h.remove(&dead) {
            purged += buf.iter().map(|&(_, c)| c as u64).sum::<u64>();
        }
        if let Some(buf) = self.l2s.remove(&dead) {
            // Span buffers are already encoded; count k-mers per record.
            let canonical = self.cfg.canonical == dakc_kmer::CanonicalMode::Canonical;
            if let Ok(sum) = unpack_spans(&buf, self.cfg.k, canonical, &mut Vec::<W>::new()) {
                purged += sum.kmers; // locally packed: decode cannot fail
            }
        }
        // Open flow tags for the purged buffers die with them.
        self.fl2n.remove(&dead);
        self.fl2h.remove(&dead);
        self.fl2s.remove(&dead);
        self.actor.purge_dest(ctx, dead);
        purged
    }

    /// The first span-decode failure observed while servicing arrivals,
    /// if any — cleared by the take.
    pub fn take_decode_error(&mut self) -> Option<SpanDecodeError> {
        self.decode_err.take()
    }

    /// Test hook: latches a decode error exactly as servicing a corrupt
    /// `CH_SUPER` payload would (first error wins).
    #[cfg(test)]
    pub(crate) fn inject_decode_error(&mut self, e: SpanDecodeError) {
        if self.decode_err.is_none() {
            self.decode_err = Some(e);
        }
    }

    /// Releases registered buffer memory.
    pub fn release<F: Fabric>(&mut self, ctx: &mut F) {
        ctx.mem_free(self.cfg.app_layer_bytes::<W>(self.num_pes));
        self.actor.release(ctx);
    }

    /// This PE's id (handy for assertions in callers).
    pub fn pe(&self) -> PeId {
        self.me
    }
}

/// Encodes one NORMAL packet: `buf.len()` k-mer words, little-endian,
/// truncated to `word_bytes` each. This *is* the L2 wire format — the
/// transport layers below never re-encode it.
pub fn encode_normal_packet<W: KmerWord>(buf: &[W], word_bytes: usize) -> Vec<u8> {
    let mut payload = Vec::with_capacity(buf.len() * word_bytes);
    for w in buf {
        payload.extend_from_slice(&w.to_u128().to_le_bytes()[..word_bytes]);
    }
    payload
}

/// Encodes one HEAVY packet: `{k-mer, count}` pairs, each a little-endian
/// word of `word_bytes` followed by a `u32 LE` count. Shared by the L2
/// heavy channel and the distributed engine's result gather.
pub fn encode_heavy_packet<W: KmerWord>(buf: &[(W, u32)], word_bytes: usize) -> Vec<u8> {
    let mut payload = Vec::with_capacity(buf.len() * (word_bytes + 4));
    for (w, c) in buf {
        payload.extend_from_slice(&w.to_u128().to_le_bytes()[..word_bytes]);
        payload.extend_from_slice(&c.to_le_bytes());
    }
    payload
}

/// Decodes one packet into the receive store (the inverse of
/// [`encode_normal_packet`] / [`encode_heavy_packet`] / the SINGLE
/// channel's bare word).
pub fn decode_packet<W: KmerWord>(
    channel: u8,
    payload: &[u8],
    word_bytes: usize,
    store: &mut ReceiveStore<W>,
) {
    let read_word = |bytes: &[u8]| -> W {
        let mut padded = [0u8; 16];
        padded[..word_bytes].copy_from_slice(&bytes[..word_bytes]);
        W::from_u128(u128::from_le_bytes(padded))
    };
    match channel {
        CH_NORMAL => {
            debug_assert_eq!(payload.len() % word_bytes, 0);
            for chunk in payload.chunks_exact(word_bytes) {
                store.plain.push(read_word(chunk));
            }
        }
        CH_HEAVY => {
            let pair_bytes = word_bytes + 4;
            debug_assert_eq!(payload.len() % pair_bytes, 0);
            for chunk in payload.chunks_exact(pair_bytes) {
                let w = read_word(chunk);
                let c = u32::from_le_bytes(
                    chunk[word_bytes..pair_bytes].try_into().expect("count"),
                );
                store.pairs.push((w, c));
            }
        }
        CH_SINGLE => {
            store.plain.push(read_word(payload));
        }
        other => panic!("unknown channel {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_normal_round_trip() {
        let mut store = ReceiveStore::<u64>::default();
        let mut payload = Vec::new();
        payload.extend_from_slice(&42u64.to_le_bytes());
        payload.extend_from_slice(&7u64.to_le_bytes());
        decode_packet(CH_NORMAL, &payload, 8, &mut store);
        assert_eq!(store.plain, vec![42, 7]);
    }

    #[test]
    fn decode_heavy_round_trip() {
        let mut store = ReceiveStore::<u64>::default();
        let mut payload = Vec::new();
        payload.extend_from_slice(&99u64.to_le_bytes());
        payload.extend_from_slice(&1000u32.to_le_bytes());
        decode_packet(CH_HEAVY, &payload, 8, &mut store);
        assert_eq!(store.pairs, vec![(99, 1000)]);
        assert_eq!(store.total_occurrences(), 1000);
    }

    #[test]
    fn decode_single() {
        let mut store = ReceiveStore::<u64>::default();
        decode_packet(CH_SINGLE, &5u64.to_le_bytes(), 8, &mut store);
        assert_eq!(store.plain, vec![5]);
    }

    #[test]
    fn decode_u128_words() {
        let mut store = ReceiveStore::<u128>::default();
        let w: u128 = (3u128 << 100) | 17;
        decode_packet(CH_SINGLE, &w.to_le_bytes(), 16, &mut store);
        assert_eq!(store.plain, vec![w]);
    }

    #[test]
    #[should_panic(expected = "unknown channel")]
    fn decode_unknown_channel_panics() {
        let mut store = ReceiveStore::<u64>::default();
        decode_packet(9, &[0u8; 8], 8, &mut store);
    }
}
