//! The simulator engine: run DAKC over a virtual cluster.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use dakc_io::ReadSet;
use dakc_kmer::{KmerCount, KmerWord};
use dakc_sim::{MachineConfig, Program, SimError, SimReport, Simulator, TraceSink};
use dakc_sort::RadixKey;

use crate::aggregate::AggStats;
use crate::config::DakcConfig;
use crate::program::{DakcPeProgram, OutputSink, PeOutput};

/// The result of a simulated DAKC run.
#[derive(Debug, Clone)]
pub struct DakcRun<W> {
    /// The global histogram, sorted by k-mer.
    pub counts: Vec<KmerCount<W>>,
    /// Simulator accounting (virtual time, bytes, idle, memory, phases).
    pub report: SimReport,
    /// Per-PE outputs (aggregation/conveyor counters, received load).
    pub per_pe: Vec<PeOutput<W>>,
}

impl<W: KmerWord> DakcRun<W> {
    /// Aggregate sender-side statistics over all PEs.
    pub fn total_agg(&self) -> AggStats {
        let mut t = AggStats::default();
        for p in &self.per_pe {
            t.kmers_added += p.agg.kmers_added;
            t.l3_flushes += p.agg.l3_flushes;
            t.heavy_pairs += p.agg.heavy_pairs;
            t.occurrences_compressed += p.agg.occurrences_compressed;
            t.normal_packets += p.agg.normal_packets;
            t.heavy_packets += p.agg.heavy_packets;
            t.single_packets += p.agg.single_packets;
            t.super_packets += p.agg.super_packets;
            t.spans_shipped += p.agg.spans_shipped;
            t.span_wire_bytes += p.agg.span_wire_bytes;
            t.span_bases_saved += p.agg.span_bases_saved;
        }
        t
    }

    /// Owner-side load imbalance: max over PEs of received *records*
    /// (the data volume that must be stored and sorted) divided by the
    /// mean (1.0 = perfectly balanced). L3's pre-accumulation shrinks a
    /// heavy owner's records while occurrences are conserved.
    pub fn load_imbalance(&self) -> f64 {
        let loads: Vec<u64> = self.per_pe.iter().map(|p| p.received_records).collect();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / loads.len() as f64;
        loads.iter().copied().max().unwrap_or(0) as f64 / mean
    }
}

/// Runs DAKC on `machine` over `reads` and returns the merged histogram
/// plus full accounting.
///
/// Every PE owns a contiguous block of reads (perfect input balance, the
/// paper's assumption 1) and the hash-owner convention partitions the
/// output.
pub fn count_kmers_sim<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    machine: &MachineConfig,
) -> Result<DakcRun<W>, SimError> {
    count_kmers_sim_traced(reads, cfg, machine, &mut TraceSink::Off)
}

/// Like [`count_kmers_sim`], but records flight-recorder events into
/// `trace` (virtual timestamps; export with
/// [`dakc_sim::telemetry::chrome_trace`]). Identical inputs produce a
/// byte-identical exported trace — tracing never perturbs the simulation.
pub fn count_kmers_sim_traced<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    machine: &MachineConfig,
    trace: &mut TraceSink,
) -> Result<DakcRun<W>, SimError> {
    cfg.validate::<W>();
    let p = machine.num_pes();
    let reads = Arc::new(reads.clone());
    let sink: OutputSink<W> = Rc::new(RefCell::new(vec![None; p]));
    let programs: Vec<Box<dyn Program>> = (0..p)
        .map(|pe| {
            Box::new(DakcPeProgram::<W>::new(
                cfg.clone(),
                Arc::clone(&reads),
                reads.pe_range(pe, p),
                sink.clone(),
            )) as Box<dyn Program>
        })
        .collect();

    let report = Simulator::new(machine.clone()).run_traced(programs, trace)?;

    let per_pe: Vec<PeOutput<W>> = Rc::try_unwrap(sink)
        .expect("simulation dropped all other references")
        .into_inner()
        .into_iter()
        .map(|o| o.expect("every PE published"))
        .collect();

    // Owner partitioning makes per-PE k-mer sets disjoint: concatenate and
    // sort once (result assembly, not part of the algorithm's timed work).
    let mut counts: Vec<KmerCount<W>> = per_pe.iter().flat_map(|o| o.counts.iter().copied()).collect();
    counts.sort_unstable_by_key(|c| c.kmer);
    debug_assert!(dakc_kmer::counts::is_sorted_strict(&counts));

    Ok(DakcRun {
        counts,
        report,
        per_pe,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dakc_kmer::CanonicalMode;

    fn tiny_reads() -> ReadSet {
        let mut rs = ReadSet::new();
        rs.push(b"ACGTACGTAA");
        rs.push(b"TTTTTTTTTT");
        rs.push(b"ACGTACGTAA");
        rs
    }

    fn reference_counts(reads: &ReadSet, k: usize) -> Vec<KmerCount<u64>> {
        use std::collections::BTreeMap;
        let mut h: BTreeMap<u64, u32> = BTreeMap::new();
        for r in reads.iter() {
            for w in dakc_kmer::kmers_of_read::<u64>(r, k, CanonicalMode::Forward) {
                *h.entry(w).or_default() += 1;
            }
        }
        h.into_iter().map(|(w, c)| KmerCount::new(w, c)).collect()
    }

    #[test]
    fn matches_reference_on_tiny_input() {
        let reads = tiny_reads();
        let cfg = DakcConfig::scaled_defaults(4);
        let machine = MachineConfig::test_machine(2, 2);
        let run = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
        assert_eq!(run.counts, reference_counts(&reads, 4));
        assert_eq!(run.report.barriers_completed, 1, "exactly one explicit barrier");
    }

    #[test]
    fn l3_mode_matches_reference() {
        let reads = tiny_reads();
        let cfg = DakcConfig::scaled_defaults(4).with_l3();
        let machine = MachineConfig::test_machine(2, 2);
        let run = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
        assert_eq!(run.counts, reference_counts(&reads, 4));
    }

    #[test]
    fn l0_l1_only_matches_reference() {
        let reads = tiny_reads();
        let cfg = DakcConfig::scaled_defaults(4).l0_l1_only();
        let machine = MachineConfig::test_machine(2, 2);
        let run = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
        assert_eq!(run.counts, reference_counts(&reads, 4));
    }

    #[test]
    fn superkmer_mode_matches_reference() {
        let reads = tiny_reads();
        let cfg = DakcConfig::scaled_defaults(4).with_superkmer(3);
        let machine = MachineConfig::test_machine(2, 2);
        let run = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
        assert_eq!(run.counts, reference_counts(&reads, 4));
        let agg = run.total_agg();
        assert!(agg.spans_shipped > 0, "span path must carry the data");
        assert!(agg.span_bases_saved > 0, "overlapping k-mers share bases");
    }

    #[test]
    fn single_pe_run() {
        let reads = tiny_reads();
        let cfg = DakcConfig::scaled_defaults(3);
        let machine = MachineConfig::test_machine(1, 1);
        let run = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
        assert_eq!(run.counts, reference_counts(&reads, 3));
    }
}
