//! The distributed engine: DAKC over a real [`Transport`].
//!
//! Each rank (an OS process under `dakc launch`, or a thread over the
//! loopback backend) runs the same phases as the simulator's
//! [`crate::program::DakcPeProgram`], driving the identical L0–L3 cascade
//! through a [`NetFabric`]:
//!
//! ```text
//! Parse  — roll k-mers out of this rank's read slice, AsyncAdd each,
//!          servicing the transport between batches.
//! Drain  — flush every layer, then alternate progress with collective
//!          four-counter termination rounds until the job is quiescent.
//! Count  — phase 2: sort + accumulate + merge this rank's partition.
//! Gather — every rank streams its `{kmer, count}` pairs (HEAVY wire
//!          format) and its metrics JSON to rank 0, which merges them.
//! ```
//!
//! The quiescent-barrier fix the simulator relies on (`processed > 0 ||
//! has_ready`) has no transport equivalent — there is no global scheduler
//! to ask — which is exactly what the termination rounds replace: a rank
//! with zero input flushes nothing, contributes `(0, 0)` and terminates
//! after the two confirming rounds; a single-rank job self-delivers and
//! terminates the same way. Both cases are regression-tested in
//! `tests/it_net.rs`.

use std::time::Instant;

use dakc_conveyors::Fabric;
use dakc_io::ReadSet;
use dakc_kmer::{counts::merge_sorted_counts, kmers_of_read, KmerCount, KmerWord};
use dakc_net::{Loopback, NetFabric, Transport};
use dakc_sim::telemetry::MetricsRegistry;
use dakc_sort::{accumulate, accumulate_weighted, hybrid_sort, lsd_radix_sort_by, RadixKey};

use crate::aggregate::{decode_packet, encode_heavy_packet, Aggregator, ReceiveStore, CH_HEAVY};
use crate::config::DakcConfig;

/// Gather chunk budget in bytes: small enough to interleave fairly on the
/// launcher's inbox, large enough to amortize framing.
const GATHER_CHUNK_BYTES: usize = 60 * 1024;

/// The result of a distributed run, published by rank 0.
#[derive(Debug, Clone)]
pub struct NetRun<W> {
    /// The global histogram, sorted by k-mer — bit-identical to the serial
    /// baseline on the same input.
    pub counts: Vec<KmerCount<W>>,
    /// All ranks' metrics merged: cascade telemetry (L0–L3 histograms)
    /// plus transport counters (`net.*`), SimReport-style.
    pub metrics: MetricsRegistry,
    /// Rank 0's wall-clock seconds from transport hand-off to merged
    /// result.
    pub elapsed_s: f64,
    /// Ranks that participated.
    pub ranks: usize,
}

/// Runs one rank of a distributed count over an already-connected
/// transport. Collective: every rank of the job must call this once, with
/// the same `cfg`. Returns `Some` on rank 0 (the merged result), `None`
/// elsewhere.
pub fn run_rank<W, T>(reads: &ReadSet, cfg: &DakcConfig, transport: T) -> Option<NetRun<W>>
where
    W: KmerWord + RadixKey,
    T: Transport,
{
    cfg.validate::<W>();
    let started = Instant::now();
    let rank = transport.rank();
    let n = transport.num_ranks();
    let word_bytes = cfg.kmer_bytes::<W>();
    let mut fab = NetFabric::new(transport);
    let mut agg = Aggregator::<W>::new(cfg.clone(), &mut fab);
    let mut store = ReceiveStore::<W>::default();

    // Parse: AsyncAdd every k-mer of this rank's slice, servicing arrivals
    // between batches so receive-side work overlaps parsing.
    let range = reads.pe_range(rank, n);
    let mut cursor = range.start;
    while cursor < range.end {
        let end = (cursor + cfg.batch_reads).min(range.end);
        for i in cursor..end {
            for w in kmers_of_read::<W>(reads.get(i), cfg.k, cfg.canonical) {
                agg.async_add(&mut fab, w);
            }
        }
        cursor = end;
        agg.progress(&mut fab, &mut store);
    }

    // Drain: flush L3→L2→L1→L0, then alternate progress with termination
    // rounds. A round only runs when this rank has nothing left to
    // process; it flushes relayed traffic first (via `Transport::flush`)
    // so counted sends are on the wire before totals are compared.
    agg.flush(&mut fab);
    loop {
        let processed = agg.progress(&mut fab, &mut store);
        if processed == 0 && fab.transport_mut().termination_round() {
            break;
        }
    }

    // Phase 2 on the quiescent store: identical sorts and merge to the
    // simulator engine's count phase.
    let ReceiveStore { mut plain, mut pairs } = store;
    hybrid_sort(&mut plain);
    let plain_counts: Vec<KmerCount<W>> = accumulate(&plain)
        .into_iter()
        .map(|(w, c)| KmerCount::new(w, c))
        .collect();
    lsd_radix_sort_by(&mut pairs, |p| p.0);
    let pair_counts: Vec<KmerCount<W>> = accumulate_weighted(&pairs)
        .into_iter()
        .map(|(w, c)| KmerCount::new(w, c))
        .collect();
    let counts = merge_sorted_counts(&plain_counts, &pair_counts);

    // Fold this rank's cascade counters next to the transport telemetry.
    let agg_stats = agg.stats();
    let conv = agg.conveyor_stats();
    {
        let m = fab.metrics();
        m.inc("agg.kmers_added", agg_stats.kmers_added);
        m.inc("agg.l3_flushes", agg_stats.l3_flushes);
        m.inc("agg.heavy_pairs", agg_stats.heavy_pairs);
        m.inc("conv.items_pushed", conv.items_pushed);
        m.inc("conv.items_delivered", conv.items_delivered);
        m.inc("conv.items_forwarded", conv.items_forwarded);
        m.inc("conv.puts", conv.puts);
    }
    agg.release(&mut fab);
    let (transport, metrics) = fab.finish();

    let result = gather(transport, counts, metrics, word_bytes);
    result.map(|(mut transport, counts, metrics)| {
        transport.barrier();
        NetRun {
            counts,
            metrics,
            elapsed_s: started.elapsed().as_secs_f64(),
            ranks: n,
        }
    })
}

/// Streams every rank's pairs and metrics to rank 0 over the (now
/// quiescent) transport. Per rank the frame sequence is: one header
/// (`[npairs: u64 LE]`), `ceil` chunk frames in HEAVY `{kmer, count}`
/// wire format, then one metrics-JSON frame. Per-peer FIFO ordering makes
/// the sequence self-delimiting. Non-zero ranks run their final barrier
/// here; rank 0's caller does after consuming the result.
fn gather<W: KmerWord, T: Transport>(
    mut transport: T,
    counts: Vec<KmerCount<W>>,
    metrics: MetricsRegistry,
    word_bytes: usize,
) -> Option<(T, Vec<KmerCount<W>>, MetricsRegistry)> {
    let rank = transport.rank();
    let n = transport.num_ranks();
    if rank != 0 {
        let pairs: Vec<(W, u32)> = counts.into_iter().map(|c| (c.kmer, c.count)).collect();
        transport.send(0, &(pairs.len() as u64).to_le_bytes());
        let chunk_pairs = (GATHER_CHUNK_BYTES / (word_bytes + 4)).max(1);
        for chunk in pairs.chunks(chunk_pairs) {
            transport.send(0, &encode_heavy_packet(chunk, word_bytes));
        }
        transport.send(0, metrics.to_json().as_bytes());
        transport.flush();
        transport.barrier();
        return None;
    }

    // Rank 0: consume each peer's header → chunks → metrics sequence.
    enum PeerState {
        Header,
        Pairs(u64),
        Metrics,
        Done,
    }
    let mut states: Vec<PeerState> = (0..n)
        .map(|r| if r == 0 { PeerState::Done } else { PeerState::Header })
        .collect();
    let mut merged = metrics;
    let mut all: Vec<(W, u32)> = counts.into_iter().map(|c| (c.kmer, c.count)).collect();
    let mut outstanding = n - 1;
    while outstanding > 0 {
        let Some((src, bytes)) = transport.try_recv() else {
            std::thread::sleep(std::time::Duration::from_micros(200));
            continue;
        };
        match states[src] {
            PeerState::Header => {
                let npairs = u64::from_le_bytes(bytes[..8].try_into().expect("gather header"));
                states[src] = if npairs == 0 {
                    PeerState::Metrics
                } else {
                    PeerState::Pairs(npairs)
                };
            }
            PeerState::Pairs(remaining) => {
                let mut store = ReceiveStore::<W>::default();
                decode_packet(CH_HEAVY, &bytes, word_bytes, &mut store);
                let got = store.pairs.len() as u64;
                assert!(got <= remaining, "gather overrun from rank {src}");
                all.extend(store.pairs);
                states[src] = if got == remaining {
                    PeerState::Metrics
                } else {
                    PeerState::Pairs(remaining - got)
                };
            }
            PeerState::Metrics => {
                let text = std::str::from_utf8(&bytes).expect("gather metrics utf8");
                let theirs = MetricsRegistry::from_json(text)
                    .unwrap_or_else(|e| panic!("gather metrics from rank {src}: {e}"));
                merged.merge(&theirs);
                states[src] = PeerState::Done;
                outstanding -= 1;
            }
            PeerState::Done => panic!("unexpected frame from finished rank {src}"),
        }
    }
    merged.inc("net.ranks", n as u64);

    // Owner partitioning makes per-rank k-mer sets disjoint: concatenate
    // and sort once.
    all.sort_unstable_by_key(|&(w, _)| w);
    let counts: Vec<KmerCount<W>> = all
        .into_iter()
        .map(|(w, c)| KmerCount::new(w, c))
        .collect();
    debug_assert!(dakc_kmer::counts::is_sorted_strict(&counts));
    Some((transport, counts, merged))
}

/// Runs a distributed count in-process: `ranks` threads over a
/// [`Loopback`] mesh. This is `dakc launch --backend loopback`, and the
/// cheap way to exercise the full transport protocol in tests.
pub fn count_kmers_loopback<W>(reads: &ReadSet, cfg: &DakcConfig, ranks: usize) -> NetRun<W>
where
    W: KmerWord + RadixKey + Send,
{
    let mesh = Loopback::mesh(ranks);
    std::thread::scope(|s| {
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|t| s.spawn(move || run_rank::<W, _>(reads, cfg, t)))
            .collect();
        let mut out = None;
        for h in handles {
            if let Some(run) = h.join().expect("rank thread panicked") {
                out = Some(run);
            }
        }
        out.expect("rank 0 publishes the result")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dakc_baselines_shim::reference_counts;

    /// Tiny reference counter, independent of all engines.
    mod dakc_baselines_shim {
        use super::*;
        use std::collections::BTreeMap;

        pub fn reference_counts(
            reads: &ReadSet,
            k: usize,
            canonical: dakc_kmer::CanonicalMode,
        ) -> Vec<KmerCount<u64>> {
            let mut h: BTreeMap<u64, u32> = BTreeMap::new();
            for r in reads.iter() {
                for w in kmers_of_read::<u64>(r, k, canonical) {
                    *h.entry(w).or_default() += 1;
                }
            }
            h.into_iter().map(|(w, c)| KmerCount::new(w, c)).collect()
        }
    }

    fn tiny_reads() -> ReadSet {
        let mut rs = ReadSet::new();
        rs.push(b"ACGTACGTAACCGGTTACGT");
        rs.push(b"TTTTTTTTTTTTTTTT");
        rs.push(b"ACGTACGTAACCGGTTACGT");
        rs.push(b"GGGGCCCCAAAATTTT");
        rs
    }

    #[test]
    fn loopback_matches_reference() {
        let reads = tiny_reads();
        let cfg = DakcConfig::scaled_defaults(5);
        for ranks in [1, 2, 3] {
            let run = count_kmers_loopback::<u64>(&reads, &cfg, ranks);
            assert_eq!(
                run.counts,
                reference_counts(&reads, 5, cfg.canonical),
                "ranks={ranks}"
            );
            assert_eq!(run.ranks, ranks);
            assert!(run.metrics.counter("net.term_rounds") >= 2 * ranks as u64);
        }
    }

    #[test]
    fn metrics_carry_transport_counters() {
        let reads = tiny_reads();
        let cfg = DakcConfig::scaled_defaults(4);
        let run = count_kmers_loopback::<u64>(&reads, &cfg, 2);
        assert!(run.metrics.counter("net.frames_sent") > 0);
        assert_eq!(run.metrics.counter("net.ranks"), 2);
        assert_eq!(
            run.metrics.counter("agg.kmers_added"),
            reference_counts(&reads, 4, cfg.canonical)
                .iter()
                .map(|c| c.count as u64)
                .sum::<u64>()
        );
    }
}
