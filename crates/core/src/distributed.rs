//! The distributed engine: DAKC over a real [`Transport`].
//!
//! Each rank (an OS process under `dakc launch`, or a thread over the
//! loopback backend) runs the same phases as the simulator's
//! [`crate::program::DakcPeProgram`], driving the identical L0–L3 cascade
//! through a [`NetFabric`]:
//!
//! ```text
//! Parse  — roll k-mers out of this rank's read slice, AsyncAdd each,
//!          servicing the transport between batches.
//! Drain  — flush every layer, then alternate progress with collective
//!          four-counter termination rounds until the job is quiescent.
//! Count  — phase 2: sort + accumulate + merge this rank's partition.
//! Gather — every rank streams its `{kmer, count}` pairs (HEAVY wire
//!          format) and its metrics JSON to rank 0, which merges them.
//! ```
//!
//! The quiescent-barrier fix the simulator relies on (`processed > 0 ||
//! has_ready`) has no transport equivalent — there is no global scheduler
//! to ask — which is exactly what the termination rounds replace: a rank
//! with zero input flushes nothing, contributes `(0, 0)` and terminates
//! after the two confirming rounds; a single-rank job self-delivers and
//! terminates the same way. Both cases are regression-tested in
//! `tests/it_net.rs`.
//!
//! Every phase is fallible: wire failures latched by the fabric surface at
//! batch boundaries, a drain whose global totals stop moving without
//! reaching quiescence fails with a four-counter diagnostic dump (the
//! stalled-termination path a dropped or duplicated frame produces), and
//! the gather fast-fails when a peer that still owes data is known dead.
//! When a [`HeartbeatState`] monitor is attached via [`RunOpts`], phase
//! transitions and traffic totals are published for the launch supervisor.

use std::sync::Arc;
use std::time::Instant;

use dakc_conveyors::Fabric;
use dakc_io::ReadSet;
use dakc_kmer::{
    counts::merge_sorted_counts, for_each_span, kmers_of_read, CanonicalMode, KmerCount, KmerWord,
};
use dakc_net::{
    HeartbeatState, Loopback, NetError, NetFabric, NetResult, NetTuning, Phase, Transport,
    DEFAULT_PINGS,
};
use dakc_sim::telemetry::{decode_events, encode_events, Event, MetricsRegistry};
use dakc_sim::EventKind;
use dakc_sort::{accumulate, accumulate_weighted, hybrid_sort, lsd_radix_sort_by, RadixKey};

use crate::aggregate::{decode_packet, encode_heavy_packet, Aggregator, ReceiveStore, CH_HEAVY};
use crate::config::DakcConfig;

/// Gather chunk budget in bytes: small enough to interleave fairly on the
/// launcher's inbox, large enough to amortize framing.
const GATHER_CHUNK_BYTES: usize = 60 * 1024;

/// Per-rank run options: transport deadlines/retries and the optional
/// supervision hook.
#[derive(Debug, Clone, Default)]
pub struct RunOpts {
    /// Deadlines and retry policy for the drain/gather waits (the
    /// transport itself is tuned at construction; this governs the
    /// driver-level stall detection).
    pub tuning: NetTuning,
    /// When set, phase transitions and traffic totals are published here
    /// for the heartbeat sender.
    pub monitor: Option<Arc<HeartbeatState>>,
    /// Turns on the distributed flight recorder: clock alignment against
    /// rank 0, wall-clock event tracing, flow sidecars on the wire, and
    /// the per-rank trace gather. Collective — every rank of a job must
    /// agree (the launcher forwards `--trace` to all workers).
    pub trace: bool,
    /// Rank-death recovery: arms the transport's recovery mode during
    /// Parse and Drain, and on a completed respawn purges the dead
    /// incarnation's contributions and replays this rank's parsed input
    /// owner-filtered toward the replacement. Collective, and requires a
    /// transport built in recovery mode (see
    /// `TcpTransport::rendezvous_recover`); on any other transport the
    /// flag is inert. Mutually exclusive with [`RunOpts::trace`].
    pub recover: bool,
}

impl RunOpts {
    fn set_phase(&self, phase: Phase) {
        if let Some(m) = &self.monitor {
            m.set_phase(phase);
        }
    }

    fn record_traffic(&self, sent: u64, recv: u64, retries: u64) {
        if let Some(m) = &self.monitor {
            m.record_traffic(sent, recv, retries);
        }
    }
}

/// The result of a distributed run, published by rank 0.
#[derive(Debug, Clone)]
pub struct NetRun<W> {
    /// The global histogram, sorted by k-mer — bit-identical to the serial
    /// baseline on the same input.
    pub counts: Vec<KmerCount<W>>,
    /// All ranks' metrics merged: cascade telemetry (L0–L3 histograms)
    /// plus transport counters (`net.*`), SimReport-style.
    pub metrics: MetricsRegistry,
    /// Rank 0's wall-clock seconds from transport hand-off to merged
    /// result.
    pub elapsed_s: f64,
    /// Ranks that participated.
    pub ranks: usize,
    /// Every rank's flight-recorder events on rank 0's clock, merged and
    /// sorted by timestamp (stable, so per-rank recording order is
    /// preserved among ties). Empty unless [`RunOpts::trace`] was set.
    pub trace: Vec<Event>,
}

/// Runs one rank of a distributed count over an already-connected
/// transport, with default options. Collective: every rank of the job
/// must call this once, with the same `cfg`. Returns `Ok(Some)` on rank 0
/// (the merged result), `Ok(None)` elsewhere, and a rank-attributed
/// [`NetError`] when the wire or a peer fails.
pub fn run_rank<W, T>(reads: &ReadSet, cfg: &DakcConfig, transport: T) -> NetResult<Option<NetRun<W>>>
where
    W: KmerWord + RadixKey,
    T: Transport,
{
    run_rank_opts(reads, cfg, transport, &RunOpts::default())
}

/// [`run_rank`] with explicit [`RunOpts`].
pub fn run_rank_opts<W, T>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    transport: T,
    opts: &RunOpts,
) -> NetResult<Option<NetRun<W>>>
where
    W: KmerWord + RadixKey,
    T: Transport,
{
    let started = Instant::now();
    let word_bytes = cfg.kmer_bytes::<W>();
    let n = transport.num_ranks();
    let Partition { transport, counts, metrics, trace } =
        count_partition(reads, cfg, transport, opts)?;

    opts.set_phase(Phase::Gather);
    let result = gather(transport, counts, metrics, trace, word_bytes, opts)?;
    opts.set_phase(Phase::Done);
    match result {
        None => Ok(None),
        Some((mut transport, counts, metrics, mut trace)) => {
            transport.barrier()?;
            // One timeline: stable sort keeps each rank's recording order
            // among equal (clock-aligned) timestamps.
            trace.sort_by(|a, b| a.ts.total_cmp(&b.ts));
            Ok(Some(NetRun {
                counts,
                metrics,
                elapsed_s: started.elapsed().as_secs_f64(),
                ranks: n,
                trace,
            }))
        }
    }
}

/// One rank's quiescent share of a distributed count, before any gather:
/// the owner-partitioned sorted `{kmer, count}` run this rank is
/// responsible for, the transport handed back for further collectives,
/// and the rank's metrics/trace so far. This is the hand-off point
/// between counting and whatever comes next — [`run_rank_opts`] streams
/// it to rank 0, `dakc serve` writes it to a shard file and stays
/// resident answering queries.
#[derive(Debug)]
pub struct Partition<W, T> {
    /// The transport, post-quiescence: the termination protocol is done
    /// but no final barrier has run, so the caller can keep using it.
    pub transport: T,
    /// This rank's owned `{kmer, count}` table, sorted by k-mer.
    pub counts: Vec<KmerCount<W>>,
    /// Cascade and transport telemetry folded so far.
    pub metrics: MetricsRegistry,
    /// Flight-recorder events (empty unless [`RunOpts::trace`]).
    pub trace: Vec<Event>,
}

/// Runs the Parse → Drain → Count phases of one rank and stops at the
/// quiescent hand-off instead of gathering: the factored-out front half
/// of [`run_rank_opts`], and the build phase of `dakc serve`. Collective
/// across the job's ranks (drain runs four-counter termination rounds),
/// but the transport comes back alive — a resident service can keep
/// exchanging frames on it indefinitely.
pub fn count_partition<W, T>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    transport: T,
    opts: &RunOpts,
) -> NetResult<Partition<W, T>>
where
    W: KmerWord + RadixKey,
    T: Transport,
{
    cfg.validate::<W>();
    let rank = transport.rank();
    let n = transport.num_ranks();
    let mut fab = NetFabric::new(transport);
    if opts.trace {
        // Order matters: the wire format switches with tracing, and the
        // clock exchange must finish before any cascade frame flies so
        // every later timestamp (trace events and flow-tag stamps alike)
        // is already on rank 0's clock.
        fab.enable_tracing();
        fab.align_clock(DEFAULT_PINGS, opts.tuning.collective_timeout)?;
    }
    let mut agg = Aggregator::<W>::new(cfg.clone(), &mut fab);
    let mut store = ReceiveStore::<W>::default();
    let recover = opts.recover && n > 1;
    if recover {
        assert!(!opts.trace, "recovery and tracing are mutually exclusive");
        store.track_sources();
        fab.transport_mut().arm_recovery(true);
    }

    // Parse: AsyncAdd every k-mer of this rank's slice, servicing arrivals
    // between batches so receive-side work overlaps parsing. Wire failures
    // latched by the fabric surface at the batch boundary.
    opts.set_phase(Phase::Parse);
    fab.trace(|| EventKind::Phase { phase: Phase::Parse as u32 });
    let range = reads.pe_range(rank, n);
    let mut cursor = range.start;
    let canonical = cfg.canonical == CanonicalMode::Canonical;
    while cursor < range.end {
        let end = (cursor + cfg.batch_reads).min(range.end);
        if cfg.superkmer {
            // L2.5: route whole minimizer spans; the owner expands them.
            for i in cursor..end {
                for_each_span(reads.get(i), cfg.k, cfg.minimizer_len, canonical, |mz, span| {
                    agg.async_add_span(&mut fab, mz, span);
                });
            }
        } else {
            for i in cursor..end {
                for w in kmers_of_read::<W>(reads.get(i), cfg.k, cfg.canonical) {
                    agg.async_add(&mut fab, w);
                }
            }
        }
        cursor = end;
        agg.progress(&mut fab, &mut store);
        take_span_error(&mut agg, rank)?;
        fab.check()?;
        if recover {
            service_recovery(&mut fab, &mut agg, &mut store, reads, cfg, range.start..cursor)?;
        }
        {
            let s = fab.transport_mut().stats();
            opts.record_traffic(s.frames_sent(), s.frames_recv(), s.retries);
        }
    }

    // Drain: flush L3→L2→L1→L0, then alternate progress with termination
    // rounds. A round only runs when this rank has nothing left to
    // process; it flushes relayed traffic first (via `Transport::flush`)
    // so counted sends are on the wire before totals are compared.
    //
    // A job whose frames were lost or duplicated on the wire never reaches
    // quiescence, yet every round completes promptly (all peers are
    // alive) — the transport's own collective deadline never fires. The
    // driver watches the *global totals* instead: unchanged totals without
    // quiescence for a full collective deadline means the counters are
    // wedged, and the run fails with the four-counter dump.
    opts.set_phase(Phase::Drain);
    fab.trace(|| EventKind::Phase { phase: Phase::Drain as u32 });
    agg.flush(&mut fab);
    let mut last_totals: Option<(u64, u64)> = None;
    let mut last_movement = Instant::now();
    loop {
        let processed = agg.progress(&mut fab, &mut store);
        take_span_error(&mut agg, rank)?;
        fab.check()?;
        if recover {
            if service_recovery(&mut fab, &mut agg, &mut store, reads, cfg, range.clone())? {
                // The replay re-enqueued content while the cascade was
                // already draining: flush the partial buffers it left and
                // restart the stall clock for the fresh epoch.
                agg.flush(&mut fab);
                last_movement = Instant::now();
                continue;
            }
            if fab.transport_mut().recovery_pending() {
                // A peer is dead awaiting respawn: rounds cannot complete
                // and totals legitimately freeze. Hold the stall detector
                // (the transport's own recovery deadline is the backstop)
                // and don't spin hot.
                last_movement = Instant::now();
                std::thread::sleep(std::time::Duration::from_millis(1));
                continue;
            }
        }
        if processed > 0 {
            continue;
        }
        if fab.transport_mut().termination_round()? {
            break;
        }
        let totals = fab.transport_mut().last_global_totals();
        if let Some((s, r)) = totals {
            let retries = fab.transport_mut().stats().retries;
            opts.record_traffic(s, r, retries);
        }
        if totals != last_totals {
            last_totals = totals;
            last_movement = Instant::now();
        } else if last_movement.elapsed() >= opts.tuning.collective_timeout {
            let waited = last_movement.elapsed();
            let diag = fab.transport_mut().diagnostics();
            return Err(NetError::timeout(
                "termination",
                waited,
                format!("quiescence stalled, global totals frozen at {last_totals:?}; {diag}"),
            ));
        }
    }

    // Quiescence reached: the recovery window closes here. A rank death
    // from now on (Count/Gather) is fatal as before — there is no replay
    // story for a partially gathered result.
    if recover {
        assert!(
            !fab.transport_mut().recovery_pending(),
            "quiescent with a recovery pending"
        );
        fab.transport_mut().arm_recovery(false);
    }

    // Phase 2 on the quiescent store: identical sorts and merge to the
    // simulator engine's count phase.
    opts.set_phase(Phase::Count);
    fab.trace(|| EventKind::Phase { phase: Phase::Count as u32 });
    let ReceiveStore { mut plain, mut pairs, .. } = store;
    hybrid_sort(&mut plain);
    let plain_counts: Vec<KmerCount<W>> = accumulate(&plain)
        .into_iter()
        .map(|(w, c)| KmerCount::new(w, c))
        .collect();
    lsd_radix_sort_by(&mut pairs, |p| p.0);
    let pair_counts: Vec<KmerCount<W>> = accumulate_weighted(&pairs)
        .into_iter()
        .map(|(w, c)| KmerCount::new(w, c))
        .collect();
    let counts = merge_sorted_counts(&plain_counts, &pair_counts);

    // Fold this rank's cascade counters next to the transport telemetry.
    let agg_stats = agg.stats();
    let conv = agg.conveyor_stats();
    {
        let m = fab.metrics();
        m.inc("agg.kmers_added", agg_stats.kmers_added);
        m.inc("agg.l3_flushes", agg_stats.l3_flushes);
        m.inc("agg.heavy_pairs", agg_stats.heavy_pairs);
        if cfg.superkmer {
            // Only in span mode, so the default mode's metrics JSON (and
            // therefore its gather frames) is byte-for-byte unchanged.
            m.inc("agg.super_packets", agg_stats.super_packets);
            m.inc("agg.spans_shipped", agg_stats.spans_shipped);
            m.inc("agg.span_wire_bytes", agg_stats.span_wire_bytes);
            m.inc("agg.span_bases_saved", agg_stats.span_bases_saved);
        }
        m.inc("conv.items_pushed", conv.items_pushed);
        m.inc("conv.items_delivered", conv.items_delivered);
        m.inc("conv.items_forwarded", conv.items_forwarded);
        m.inc("conv.puts", conv.puts);
        if let Some(mon) = &opts.monitor {
            m.inc("net.heartbeats_sent", mon.beats());
        }
    }
    agg.release(&mut fab);
    fab.check()?;
    fab.trace(|| EventKind::Phase { phase: Phase::Gather as u32 });
    let (transport, metrics, trace) = fab.finish();
    Ok(Partition { transport, counts, metrics, trace })
}

/// Drives the transport's rank-recovery machinery for one step and, when
/// a respawned peer has fully reconnected, repairs this rank's state:
///
/// 1. Every record the dead incarnation delivered is purged from the
///    receive store (the replacement re-runs its whole phase 1, so they
///    will all be re-received).
/// 2. Every not-yet-shipped record destined for the dead rank is purged
///    from the cascade buffers (the replay below regenerates them;
///    shipping both copies would double-count).
/// 3. This rank's parsed input prefix is deterministically re-extracted,
///    routing *only* k-mers (or spans) owned by the recovered rank back
///    through the ordinary cascade — CH_SUPER included.
///
/// Determinism argument: the replayed multiset is a pure function of the
/// input partition and the owner hash, and steps 1–2 remove exactly the
/// two places a stale copy could hide (received-from-dead, buffered-for-
/// dead), so after replay every k-mer owned by the recovered rank from
/// this rank's prefix is in flight exactly once. Returns whether a
/// recovery completed.
fn service_recovery<W, T>(
    fab: &mut NetFabric<T>,
    agg: &mut Aggregator<W>,
    store: &mut ReceiveStore<W>,
    reads: &ReadSet,
    cfg: &DakcConfig,
    parsed: std::ops::Range<usize>,
) -> NetResult<bool>
where
    W: KmerWord + RadixKey,
    T: Transport,
{
    let Some(rec) = fab.transport_mut().poll_recovery()? else {
        return Ok(false);
    };
    let dead = rec.rank;
    let n = fab.transport_mut().num_ranks();
    let purged_recv = store.purge_source(dead);
    let purged_sent = agg.purge_dest(fab, dead);
    let canonical = cfg.canonical == CanonicalMode::Canonical;
    let mut replayed = 0u64;
    for i in parsed {
        if cfg.superkmer {
            for_each_span(reads.get(i), cfg.k, cfg.minimizer_len, canonical, |mz, span| {
                if dakc_kmer::owner_pe(mz, n) == dead {
                    replayed += (span.len() + 1 - cfg.k) as u64;
                    agg.async_add_span(fab, mz, span);
                }
            });
        } else {
            for w in kmers_of_read::<W>(reads.get(i), cfg.k, cfg.canonical) {
                if dakc_kmer::owner_pe(w, n) == dead {
                    replayed += 1;
                    agg.async_add(fab, w);
                }
            }
        }
    }
    // Recovery-only counters: absent from any run that never recovered,
    // keeping the default metrics export byte-stable.
    let m = fab.metrics();
    m.inc("net.replayed_kmers", replayed);
    m.inc("net.purged_recv_occurrences", purged_recv);
    m.inc("net.purged_sent_occurrences", purged_sent);
    Ok(true)
}

/// Surfaces a latched span-decode failure as a typed wire error: a span
/// record that fails to unpack means some peer's stream corrupted in a
/// way that framing alone could not catch. The source rank of the bad
/// record is not recoverable post-hoc, so the error names the receiving
/// rank and says so.
fn take_span_error<W: KmerWord + RadixKey>(
    agg: &mut Aggregator<W>,
    rank: usize,
) -> NetResult<()> {
    match agg.take_decode_error() {
        None => Ok(()),
        Some(e) => Err(NetError::CorruptFrame {
            rank,
            detail: format!("super-k-mer span received on this rank failed to decode: {e}"),
        }),
    }
}

/// Streams every rank's pairs, metrics, and (when tracing) trace buffer
/// to rank 0 over the (now quiescent) transport. Per rank the frame
/// sequence is: one header (`[npairs: u64 LE]`), `ceil` chunk frames in
/// HEAVY `{kmer, count}` wire format, one metrics-JSON frame, and — only
/// when [`RunOpts::trace`] is set on every rank — one trace header
/// (`[nbytes: u64 LE]`) followed by `ceil` chunks of
/// [`encode_events`]-format bytes. Per-peer FIFO ordering makes the
/// sequence self-delimiting. Non-zero ranks run their final barrier here;
/// rank 0's caller does after consuming the result. Rank 0 fast-fails
/// when a peer that still owes frames dies, and times out when no frame
/// arrives for a full collective deadline.
type Gathered<W, T> = Option<(T, Vec<KmerCount<W>>, MetricsRegistry, Vec<Event>)>;

fn gather<W: KmerWord, T: Transport>(
    mut transport: T,
    counts: Vec<KmerCount<W>>,
    metrics: MetricsRegistry,
    trace: Vec<Event>,
    word_bytes: usize,
    opts: &RunOpts,
) -> NetResult<Gathered<W, T>> {
    let rank = transport.rank();
    let n = transport.num_ranks();
    if rank != 0 {
        let pairs: Vec<(W, u32)> = counts.into_iter().map(|c| (c.kmer, c.count)).collect();
        transport.send(0, &(pairs.len() as u64).to_le_bytes())?;
        let chunk_pairs = (GATHER_CHUNK_BYTES / (word_bytes + 4)).max(1);
        for chunk in pairs.chunks(chunk_pairs) {
            transport.send(0, &encode_heavy_packet(chunk, word_bytes))?;
        }
        transport.send(0, metrics.to_json().as_bytes())?;
        if opts.trace {
            let bytes = encode_events(&trace);
            transport.send(0, &(bytes.len() as u64).to_le_bytes())?;
            for chunk in bytes.chunks(GATHER_CHUNK_BYTES) {
                transport.send(0, chunk)?;
            }
        }
        transport.flush()?;
        transport.barrier()?;
        return Ok(None);
    }

    // Rank 0: consume each peer's header → chunks → metrics sequence
    // (continuing into the trace header → chunks when tracing).
    #[derive(Clone, Copy, PartialEq)]
    enum PeerState {
        Header,
        Pairs(u64),
        Metrics,
        TraceHeader,
        Trace(u64),
        Done,
    }
    let mut states: Vec<PeerState> = (0..n)
        .map(|r| if r == 0 { PeerState::Done } else { PeerState::Header })
        .collect();
    let mut merged = metrics;
    let mut all: Vec<(W, u32)> = counts.into_iter().map(|c| (c.kmer, c.count)).collect();
    let mut merged_trace = trace;
    let mut trace_bufs: Vec<Vec<u8>> = vec![Vec::new(); n];
    let mut outstanding = n - 1;
    let mut last_frame = Instant::now();
    while outstanding > 0 {
        let Some((src, bytes)) = transport.try_recv()? else {
            // Nothing arrived: fail fast on a dead debtor, then on silence.
            if let Some(p) =
                (0..n).find(|&p| states[p] != PeerState::Done && transport.peer_dead(p))
            {
                return Err(NetError::PeerDisconnected {
                    rank: p,
                    detail: "died during gather with results outstanding".to_string(),
                });
            }
            let waited = last_frame.elapsed();
            if waited >= opts.tuning.collective_timeout {
                let owing: Vec<usize> =
                    (0..n).filter(|&p| states[p] != PeerState::Done).collect();
                return Err(NetError::timeout(
                    "gather",
                    waited,
                    format!("ranks {owing:?} still owe frames; {}", transport.diagnostics()),
                ));
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
            continue;
        };
        last_frame = Instant::now();
        match states[src] {
            PeerState::Header => {
                let npairs = bytes
                    .get(..8)
                    .and_then(|b| <[u8; 8]>::try_from(b).ok())
                    .map(u64::from_le_bytes)
                    .ok_or_else(|| NetError::Protocol {
                        detail: format!(
                            "gather header from rank {src} is {} bytes, want 8",
                            bytes.len()
                        ),
                    })?;
                states[src] = if npairs == 0 {
                    PeerState::Metrics
                } else {
                    PeerState::Pairs(npairs)
                };
            }
            PeerState::Pairs(remaining) => {
                let mut store = ReceiveStore::<W>::default();
                decode_packet(CH_HEAVY, &bytes, word_bytes, &mut store);
                let got = store.pairs.len() as u64;
                if got > remaining {
                    return Err(NetError::Protocol {
                        detail: format!(
                            "gather overrun from rank {src}: got {got} pairs, expected {remaining}"
                        ),
                    });
                }
                all.extend(store.pairs);
                states[src] = if got == remaining {
                    PeerState::Metrics
                } else {
                    PeerState::Pairs(remaining - got)
                };
            }
            PeerState::Metrics => {
                let theirs = std::str::from_utf8(&bytes)
                    .map_err(|e| NetError::Protocol {
                        detail: format!("gather metrics from rank {src}: not utf8: {e}"),
                    })
                    .and_then(|text| {
                        MetricsRegistry::from_json(text).map_err(|e| NetError::Protocol {
                            detail: format!("gather metrics from rank {src}: {e}"),
                        })
                    })?;
                merged.merge(&theirs);
                if opts.trace {
                    states[src] = PeerState::TraceHeader;
                } else {
                    states[src] = PeerState::Done;
                    outstanding -= 1;
                }
            }
            PeerState::TraceHeader => {
                let nbytes = bytes
                    .get(..8)
                    .and_then(|b| <[u8; 8]>::try_from(b).ok())
                    .map(u64::from_le_bytes)
                    .ok_or_else(|| NetError::Protocol {
                        detail: format!(
                            "trace header from rank {src} is {} bytes, want 8",
                            bytes.len()
                        ),
                    })?;
                if nbytes == 0 {
                    states[src] = PeerState::Done;
                    outstanding -= 1;
                } else {
                    trace_bufs[src].reserve(nbytes as usize);
                    states[src] = PeerState::Trace(nbytes);
                }
            }
            PeerState::Trace(remaining) => {
                let got = bytes.len() as u64;
                if got > remaining {
                    return Err(NetError::Protocol {
                        detail: format!(
                            "trace overrun from rank {src}: got {got} bytes, expected {remaining}"
                        ),
                    });
                }
                trace_bufs[src].extend_from_slice(&bytes);
                if got == remaining {
                    let events = decode_events(&trace_bufs[src]).map_err(|detail| {
                        NetError::CorruptFrame { rank: src, detail }
                    })?;
                    trace_bufs[src] = Vec::new();
                    merged_trace.extend(events);
                    states[src] = PeerState::Done;
                    outstanding -= 1;
                } else {
                    states[src] = PeerState::Trace(remaining - got);
                }
            }
            PeerState::Done => {
                return Err(NetError::Protocol {
                    detail: format!("unexpected frame from finished rank {src}"),
                })
            }
        }
    }
    merged.inc("net.ranks", n as u64);

    // Owner partitioning makes per-rank k-mer sets disjoint: concatenate
    // and sort once.
    all.sort_unstable_by_key(|&(w, _)| w);
    let counts: Vec<KmerCount<W>> = all
        .into_iter()
        .map(|(w, c)| KmerCount::new(w, c))
        .collect();
    debug_assert!(dakc_kmer::counts::is_sorted_strict(&counts));
    Ok(Some((transport, counts, merged, merged_trace)))
}

/// Runs a distributed count in-process: `ranks` threads over a
/// [`Loopback`] mesh. This is `dakc launch --backend loopback`, and the
/// cheap way to exercise the full transport protocol in tests. Fails with
/// the lowest-failing-rank's error when any rank fails.
pub fn count_kmers_loopback<W>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    ranks: usize,
) -> NetResult<NetRun<W>>
where
    W: KmerWord + RadixKey + Send,
{
    count_kmers_loopback_opts(reads, cfg, ranks, &RunOpts::default())
}

/// [`count_kmers_loopback`] with explicit [`RunOpts`] — how a loopback
/// launch turns on the distributed flight recorder. The monitor (if any)
/// is shared by every rank thread, so leave it unset here.
pub fn count_kmers_loopback_opts<W>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    ranks: usize,
    opts: &RunOpts,
) -> NetResult<NetRun<W>>
where
    W: KmerWord + RadixKey + Send,
{
    let mesh = Loopback::mesh(ranks);
    std::thread::scope(|s| {
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|t| s.spawn(move || run_rank_opts::<W, _>(reads, cfg, t, opts)))
            .collect();
        let mut out = None;
        let mut failure = None;
        for h in handles {
            match h.join().expect("rank thread panicked") {
                Ok(Some(run)) => out = Some(run),
                Ok(None) => {}
                Err(e) => failure = Some(failure.unwrap_or(e)),
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(out.expect("rank 0 publishes the result")),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dakc_baselines_shim::reference_counts;

    /// Tiny reference counter, independent of all engines.
    mod dakc_baselines_shim {
        use super::*;
        use std::collections::BTreeMap;

        pub fn reference_counts(
            reads: &ReadSet,
            k: usize,
            canonical: dakc_kmer::CanonicalMode,
        ) -> Vec<KmerCount<u64>> {
            let mut h: BTreeMap<u64, u32> = BTreeMap::new();
            for r in reads.iter() {
                for w in kmers_of_read::<u64>(r, k, canonical) {
                    *h.entry(w).or_default() += 1;
                }
            }
            h.into_iter().map(|(w, c)| KmerCount::new(w, c)).collect()
        }
    }

    fn tiny_reads() -> ReadSet {
        let mut rs = ReadSet::new();
        rs.push(b"ACGTACGTAACCGGTTACGT");
        rs.push(b"TTTTTTTTTTTTTTTT");
        rs.push(b"ACGTACGTAACCGGTTACGT");
        rs.push(b"GGGGCCCCAAAATTTT");
        rs
    }

    #[test]
    fn loopback_matches_reference() {
        let reads = tiny_reads();
        let cfg = DakcConfig::scaled_defaults(5);
        for ranks in [1, 2, 3] {
            let run = count_kmers_loopback::<u64>(&reads, &cfg, ranks).unwrap();
            assert_eq!(
                run.counts,
                reference_counts(&reads, 5, cfg.canonical),
                "ranks={ranks}"
            );
            assert_eq!(run.ranks, ranks);
            assert!(run.metrics.counter("net.term_rounds") >= 2 * ranks as u64);
        }
    }

    #[test]
    fn loopback_superkmer_matches_reference() {
        let reads = tiny_reads();
        let cfg = DakcConfig::scaled_defaults(5).with_superkmer(3);
        for ranks in [1, 2, 3] {
            let run = count_kmers_loopback::<u64>(&reads, &cfg, ranks).unwrap();
            assert_eq!(
                run.counts,
                reference_counts(&reads, 5, cfg.canonical),
                "ranks={ranks}"
            );
            assert!(run.metrics.counter("agg.spans_shipped") > 0, "ranks={ranks}");
            assert!(run.metrics.counter("net.superkmer.spans") > 0, "ranks={ranks}");
        }
    }

    // The aggregator's latched span-decode failure must come out of the
    // run loop as a typed CorruptFrame naming this rank — the "corrupt
    // super frame never panics or miscounts" contract.
    #[test]
    fn span_decode_error_surfaces_as_corrupt_frame() {
        let mut fab = NetFabric::new(Loopback::mesh(1).remove(0));
        let cfg = DakcConfig::scaled_defaults(5).with_superkmer(3);
        let mut agg = Aggregator::<u64>::new(cfg, &mut fab);
        assert!(take_span_error(&mut agg, 1).is_ok(), "no error latched yet");
        agg.inject_decode_error(dakc_kmer::SpanDecodeError::TooShort { len: 2, k: 5 });
        match take_span_error(&mut agg, 1) {
            Err(NetError::CorruptFrame { rank, detail }) => {
                assert_eq!(rank, 1);
                assert!(detail.contains("failed to decode"), "{detail}");
            }
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
        assert!(take_span_error(&mut agg, 1).is_ok(), "take must clear the latch");
    }

    #[test]
    fn metrics_carry_transport_counters() {
        let reads = tiny_reads();
        let cfg = DakcConfig::scaled_defaults(4);
        let run = count_kmers_loopback::<u64>(&reads, &cfg, 2).unwrap();
        assert!(run.metrics.counter("net.frames_sent") > 0);
        assert_eq!(run.metrics.counter("net.ranks"), 2);
        assert_eq!(
            run.metrics.counter("agg.kmers_added"),
            reference_counts(&reads, 4, cfg.canonical)
                .iter()
                .map(|c| c.count as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn traced_loopback_merges_aligned_flow_events() {
        let reads = tiny_reads();
        let cfg = DakcConfig::scaled_defaults(5).with_trace_sample(1);
        let opts = RunOpts { trace: true, ..RunOpts::default() };
        let run = count_kmers_loopback_opts::<u64>(&reads, &cfg, 3, &opts).unwrap();
        assert_eq!(run.counts, reference_counts(&reads, 5, cfg.canonical));

        // The merged timeline is sorted and carries every rank's events.
        assert!(!run.trace.is_empty());
        assert!(run.trace.windows(2).all(|w| w[0].ts <= w[1].ts), "unsorted merge");
        let mut pes: Vec<u32> = run.trace.iter().map(|e| e.pe).collect();
        pes.sort_unstable();
        pes.dedup();
        assert_eq!(pes, vec![0, 1, 2], "all ranks contribute events");

        // Every flow close pairs an open, and post-alignment the close
        // never precedes its open by more than the estimation error.
        let sends: Vec<&Event> = run
            .trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FlowSend { .. }))
            .collect();
        let recvs: Vec<&Event> = run
            .trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FlowRecv { .. }))
            .collect();
        assert!(!recvs.is_empty(), "sampling at 1-in-1 must close flows");
        let mut cross_rank = 0;
        for r in &recvs {
            let EventKind::FlowRecv { flow, .. } = r.kind else { unreachable!() };
            let s = sends
                .iter()
                .find(|s| matches!(s.kind, EventKind::FlowSend { flow: f, .. } if f == flow))
                .unwrap_or_else(|| panic!("flow {flow:#x} closed without an open"));
            assert!(r.ts >= s.ts - 5e-3, "close at {} before open at {}", r.ts, s.ts);
            if r.pe != s.pe {
                cross_rank += 1;
            }
        }
        assert!(cross_rank > 0, "3 ranks with owner hashing must cross ranks");
    }

    #[test]
    fn untraced_run_records_nothing() {
        let reads = tiny_reads();
        let cfg = DakcConfig::scaled_defaults(5);
        let run = count_kmers_loopback::<u64>(&reads, &cfg, 2).unwrap();
        assert!(run.trace.is_empty());
    }

    #[test]
    fn monitor_sees_phases_and_heartbeat_metric() {
        let reads = tiny_reads();
        let cfg = DakcConfig::scaled_defaults(5);
        let mesh = Loopback::mesh(1);
        let monitor = Arc::new(HeartbeatState::new());
        let opts = RunOpts { monitor: Some(Arc::clone(&monitor)), ..RunOpts::default() };
        let mut mesh = mesh;
        let run = run_rank_opts::<u64, _>(&reads, &cfg, mesh.remove(0), &opts)
            .unwrap()
            .expect("rank 0 result");
        assert_eq!(monitor.phase(), Phase::Done);
        // No sender thread was attached, so zero beats were recorded —
        // but the counter exists in the merged metrics.
        assert_eq!(run.metrics.counter("net.heartbeats_sent"), 0);
        assert_eq!(run.counts, reference_counts(&reads, 5, cfg.canonical));
    }
}
