//! Failure-injection tests for the simulator: programs that misbehave must
//! produce diagnosable errors, not hangs or silent corruption.

use dakc_sim::{Ctx, MachineConfig, Program, SimError, Simulator, Step};

/// A program driven by a script of steps.
struct Scripted {
    script: Vec<Step>,
    at: usize,
    on_step: fn(&mut Ctx<'_>, usize),
}

impl Program for Scripted {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        (self.on_step)(ctx, self.at);
        let s = self.script.get(self.at).copied().unwrap_or(Step::Done);
        self.at += 1;
        s
    }
}

fn noop(_: &mut Ctx<'_>, _: usize) {}

#[test]
fn message_to_finished_pe_is_an_error() {
    // PE 1 finishes on its first step; PE 0 computes for a step (so PE 1
    // is already Done), then sends to it.
    struct LateSender {
        at: u8,
    }
    impl Program for LateSender {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            match self.at {
                0 => {
                    ctx.charge_ops(1_000_000);
                    self.at = 1;
                    Step::Yield
                }
                1 => {
                    ctx.send(1, 0, vec![1]);
                    self.at = 2;
                    Step::Yield
                }
                _ => Step::Done,
            }
        }
    }
    struct Quitter;
    impl Program for Quitter {
        fn step(&mut self, _ctx: &mut Ctx<'_>) -> Step {
            Step::Done
        }
    }
    let sim = Simulator::new(MachineConfig::test_machine(2, 1));
    let err = sim
        .run(vec![Box::new(LateSender { at: 0 }), Box::new(Quitter)])
        .unwrap_err();
    assert!(matches!(err, SimError::MessageToFinishedPe { src: 0, dst: 1 }));
}

#[test]
fn mixed_sleepers_and_barrier_waiters_deadlock_cleanly() {
    let sim = Simulator::new(MachineConfig::test_machine(2, 1));
    let programs: Vec<Box<dyn Program>> = vec![
        Box::new(Scripted { script: vec![Step::Sleep], at: 0, on_step: noop }),
        Box::new(Scripted { script: vec![Step::Barrier], at: 0, on_step: noop }),
    ];
    let err = sim.run(programs).unwrap_err();
    match err {
        SimError::Deadlock { sleeping, in_barrier } => {
            assert_eq!(sleeping, vec![0]);
            assert_eq!(in_barrier, vec![1]);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn oom_error_identifies_the_node() {
    struct Hog(usize);
    impl Program for Hog {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            if ctx.pe() == self.0 {
                ctx.mem_alloc(u64::MAX / 4);
            }
            Step::Done
        }
    }
    let mut machine = MachineConfig::test_machine(3, 2);
    machine.node_memory = 1 << 20;
    let sim = Simulator::new(machine);
    let programs: Vec<Box<dyn Program>> = (0..6).map(|_| Box::new(Hog(5)) as Box<dyn Program>).collect();
    let err = sim.run(programs).unwrap_err();
    match err {
        SimError::Oom(e) => assert_eq!(e.node, 2, "PE 5 lives on node 2"),
        other => panic!("expected OOM, got {other:?}"),
    }
}

#[test]
fn error_display_is_informative() {
    let e = SimError::Deadlock { sleeping: vec![1, 2], in_barrier: vec![3] };
    let s = format!("{e}");
    assert!(s.contains("deadlock") && s.contains('2') && s.contains('1'));
    let e = SimError::MessageToFinishedPe { src: 4, dst: 9 };
    assert!(format!("{e}").contains('9'));
}

#[test]
fn zero_work_programs_terminate_immediately() {
    let sim = Simulator::new(MachineConfig::test_machine(2, 2));
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|_| {
            Box::new(Scripted { script: vec![Step::Done], at: 0, on_step: noop })
                as Box<dyn Program>
        })
        .collect();
    let r = sim.run(programs).unwrap();
    assert_eq!(r.total_time, 0.0);
    assert_eq!(r.barriers_completed, 0);
}

#[test]
fn repeated_barriers_synchronize_every_time() {
    fn charge_by_pe(ctx: &mut Ctx<'_>, _at: usize) {
        // Different speeds each round; barrier must equalize clocks.
        ctx.charge_ops((ctx.pe() as u64 + 1) * 1_000_000);
    }
    let rounds = 5;
    let sim = Simulator::new(MachineConfig::test_machine(1, 3));
    let programs: Vec<Box<dyn Program>> = (0..3)
        .map(|_| {
            let mut script = vec![Step::Barrier; rounds];
            script.push(Step::Done);
            Box::new(Scripted { script, at: 0, on_step: charge_by_pe }) as Box<dyn Program>
        })
        .collect();
    let r = sim.run(programs).unwrap();
    assert_eq!(r.barriers_completed, rounds as u64);
    // The fast PE idles in every round.
    assert!(r.pes[0].barrier_wait_s > r.pes[2].barrier_wait_s);
}

#[test]
fn self_messages_deliver() {
    struct SelfTalk {
        state: u8,
    }
    impl Program for SelfTalk {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            match self.state {
                0 => {
                    ctx.send(ctx.pe(), 3, vec![7; 16]);
                    self.state = 1;
                    Step::Yield
                }
                1 => {
                    let msgs = ctx.poll();
                    assert_eq!(msgs.len(), 1);
                    assert_eq!(msgs[0].src, ctx.pe());
                    assert_eq!(msgs[0].tag, 3);
                    self.state = 2;
                    Step::Done
                }
                _ => Step::Done,
            }
        }
    }
    let sim = Simulator::new(MachineConfig::test_machine(1, 1));
    sim.run(vec![Box::new(SelfTalk { state: 0 })]).unwrap();
}

#[test]
fn byte_accounting_balances() {
    // All sent bytes must be received by completion.
    struct Chatter {
        sent: bool,
    }
    impl Program for Chatter {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            if !self.sent {
                let p = ctx.num_pes();
                for d in 0..p {
                    ctx.send(d, 0, vec![0xAB; 10 + d]);
                }
                self.sent = true;
                return Step::Barrier;
            }
            // Drain anything that arrived; keep waiting while more is on
            // the way (finishing with undelivered mail is a program bug).
            ctx.poll();
            if ctx.next_arrival().is_some() {
                return Step::Barrier;
            }
            Step::Done
        }
    }
    // NOTE: messages may arrive while in the barrier (quiescence wakes the
    // PE); poll happens then, so everything is delivered by completion.
    let sim = Simulator::new(MachineConfig::test_machine(2, 2));
    let programs: Vec<Box<dyn Program>> =
        (0..4).map(|_| Box::new(Chatter { sent: false }) as Box<dyn Program>).collect();
    let r = sim.run(programs).unwrap();
    let sent: u64 = r.pes.iter().map(|p| p.bytes_sent_local + p.bytes_sent_remote).sum();
    let recv: u64 = r.pes.iter().map(|p| p.bytes_received).sum();
    assert_eq!(sent, recv, "sent {sent} != received {recv}");
}
