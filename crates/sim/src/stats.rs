//! Execution accounting.
//!
//! Everything the paper's evaluation plots comes from these counters: time
//! decomposed into compute / intranode / internode / idle (Fig 5), bytes
//! and message counts on the wire (the L2/L3 ablation of Fig 12 is a
//! communication-volume story), barrier waits (the synchronization cost the
//! FA-BSP design removes), and per-node peak memory (the OOM annotations of
//! Fig 8 and the protocol memory of Fig 2).


/// Where a PE's virtual time went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Integer/ALU work (k-mer rolling, hashing, sort passes).
    Compute,
    /// Main-memory traffic within the node, including colocated-PE
    /// "memcpy" message delivery.
    Intranode,
    /// NIC injection time for internode messages.
    Internode,
    /// Time spent with nothing to do: waiting for messages or inside a
    /// barrier.
    Idle,
}

/// Per-PE counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PeStats {
    /// Seconds of integer compute.
    pub compute_s: f64,
    /// Seconds of intranode memory traffic.
    pub intranode_s: f64,
    /// Seconds of NIC occupancy.
    pub internode_s: f64,
    /// Seconds idle (message waits + barrier waits).
    pub idle_s: f64,
    /// Seconds idle inside barriers only (subset of `idle_s`).
    pub barrier_wait_s: f64,
    /// Messages sent, by destination locality.
    pub msgs_sent_local: u64,
    /// Messages sent to remote nodes.
    pub msgs_sent_remote: u64,
    /// Payload bytes sent to colocated PEs.
    pub bytes_sent_local: u64,
    /// Payload bytes sent across the network.
    pub bytes_sent_remote: u64,
    /// Messages received (delivered through `poll`).
    pub msgs_received: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Number of barriers this PE entered.
    pub barriers: u64,
    /// Integer operations charged.
    pub ops: u64,
    /// Current allocation in bytes.
    pub mem_now: u64,
    /// Peak allocation in bytes.
    pub mem_peak: u64,
}

impl PeStats {
    /// Records time against a category.
    pub fn charge(&mut self, cat: Category, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative charge {seconds}");
        match cat {
            Category::Compute => self.compute_s += seconds,
            Category::Intranode => self.intranode_s += seconds,
            Category::Internode => self.internode_s += seconds,
            Category::Idle => self.idle_s += seconds,
        }
    }

    /// Total accounted seconds.
    pub fn busy_s(&self) -> f64 {
        self.compute_s + self.intranode_s + self.internode_s
    }
}

/// The result of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual makespan: the maximum PE clock at completion.
    pub total_time: f64,
    /// Per-PE counters.
    pub pes: Vec<PeStats>,
    /// Peak memory per node, bytes.
    pub node_mem_peak: Vec<u64>,
    /// Number of global barriers completed.
    pub barriers_completed: u64,
    /// Per-phase makespan, indexed by the phase ids programs declared via
    /// [`crate::Ctx::set_phase`]. `phase_time[p]` is the virtual time span
    /// during which phase `p` was the latest phase entered.
    pub phase_time: Vec<f64>,
    /// Named counters and histograms recorded during the run (merged
    /// across PEs): packet fill ratios, payload sizes, barrier waits, hop
    /// counts. Empty unless the program observed anything.
    pub metrics: crate::telemetry::MetricsRegistry,
}

impl SimReport {
    /// Total payload bytes that crossed node boundaries.
    pub fn remote_bytes(&self) -> u64 {
        self.pes.iter().map(|p| p.bytes_sent_remote).sum()
    }

    /// Total payload bytes delivered between colocated PEs.
    pub fn local_bytes(&self) -> u64 {
        self.pes.iter().map(|p| p.bytes_sent_local).sum()
    }

    /// Total messages sent (local + remote).
    pub fn total_msgs(&self) -> u64 {
        self.pes
            .iter()
            .map(|p| p.msgs_sent_local + p.msgs_sent_remote)
            .sum()
    }

    /// Aggregate seconds per category across PEs, in
    /// `[compute, intranode, internode, idle]` order — the decomposition
    /// Fig 5 plots as percentages.
    pub fn category_seconds(&self) -> [f64; 4] {
        let mut acc = [0.0f64; 4];
        for p in &self.pes {
            acc[0] += p.compute_s;
            acc[1] += p.intranode_s;
            acc[2] += p.internode_s;
            acc[3] += p.idle_s;
        }
        acc
    }

    /// Percentage breakdown of busy time `[compute, intra, inter]`
    /// ignoring idle, as Fig 5 presents ("no overlap assumed").
    pub fn busy_percentages(&self) -> [f64; 3] {
        let [c, ia, ie, _] = self.category_seconds();
        let total = c + ia + ie;
        if total == 0.0 {
            [0.0; 3]
        } else {
            [100.0 * c / total, 100.0 * ia / total, 100.0 * ie / total]
        }
    }

    /// Peak memory over all nodes, bytes.
    pub fn peak_node_memory(&self) -> u64 {
        self.node_mem_peak.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut s = PeStats::default();
        s.charge(Category::Compute, 1.0);
        s.charge(Category::Compute, 0.5);
        s.charge(Category::Idle, 2.0);
        assert!((s.compute_s - 1.5).abs() < 1e-12);
        assert!((s.idle_s - 2.0).abs() < 1e-12);
        assert!((s.busy_s() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn report_aggregates() {
        let a = PeStats { compute_s: 1.0, bytes_sent_remote: 100, ..Default::default() };
        let b = PeStats {
            internode_s: 3.0,
            bytes_sent_local: 7,
            msgs_sent_local: 1,
            ..Default::default()
        };
        let r = SimReport {
            total_time: 3.0,
            pes: vec![a, b],
            node_mem_peak: vec![10, 20],
            barriers_completed: 0,
            phase_time: vec![],
            metrics: Default::default(),
        };
        assert_eq!(r.remote_bytes(), 100);
        assert_eq!(r.local_bytes(), 7);
        assert_eq!(r.total_msgs(), 1);
        assert_eq!(r.peak_node_memory(), 20);
        let pct = r.busy_percentages();
        assert!((pct[0] - 25.0).abs() < 1e-9);
        assert!((pct[2] - 75.0).abs() < 1e-9);
    }
}
