//! In-flight messages.
//!
//! A message models one one-sided `PUT`: a source PE, a destination PE, a
//! tag (channel discriminator — conveyor hop, collective round, HEAVY vs
//! NORMAL), an opaque payload and the virtual time at which the payload
//! lands in the destination's receive buffer.
//!
//! Payloads are plain `Vec<u8>`: the communication layers above serialize
//! packed k-mer words into them, so the byte counts the simulator charges
//! for are exactly the bytes a real implementation would move (including
//! the 32-bit routing headers whose overhead motivates the paper's L2
//! layer).

use crate::machine::PeId;
use crate::telemetry::FlowTag;

/// One in-flight or delivered message.
#[derive(Debug, Clone, PartialEq)]
pub struct Msg {
    /// Sending PE.
    pub src: PeId,
    /// Destination PE.
    pub dst: PeId,
    /// Channel discriminator, free for the layers above.
    pub tag: u32,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
    /// Virtual time at which the message is visible to `dst`.
    pub arrival: f64,
    /// Global send sequence number; makes delivery order total and
    /// deterministic when arrivals tie.
    pub seq: u64,
    /// Out-of-band causal flow tags riding with this message, keyed by the
    /// ordinal of the tagged record within the payload. Empty unless flow
    /// sampling is on; never serialized, never charged for — simulated
    /// time depends only on `payload` bytes.
    pub flows: Vec<(u32, FlowTag)>,
}

impl Msg {
    /// Payload size in bytes (what bandwidth is charged for).
    #[inline]
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// `true` if the payload is empty (zero-byte flush marker).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// Min-heap ordering key for pending messages: earliest arrival first,
/// sequence number breaking ties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ArrivalKey {
    pub arrival: f64,
    pub seq: u64,
}

impl Eq for ArrivalKey {}

impl PartialOrd for ArrivalKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ArrivalKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Arrival times are finite by construction (sums of finite costs).
        self.arrival
            .partial_cmp(&other.arrival)
            .expect("finite arrival times")
            .then(self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_key_orders_by_time_then_seq() {
        let a = ArrivalKey { arrival: 1.0, seq: 5 };
        let b = ArrivalKey { arrival: 2.0, seq: 1 };
        let c = ArrivalKey { arrival: 1.0, seq: 6 };
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn msg_len() {
        let m = Msg {
            src: 0,
            dst: 1,
            tag: 0,
            payload: vec![1, 2, 3],
            arrival: 0.0,
            seq: 0,
            flows: Vec::new(),
        };
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }
}
