//! Execution timelines.
//!
//! [`Timeline`] turns a [`crate::SimReport`] into human-readable pictures:
//! a per-PE utilization bar (how each PE split its time across compute,
//! intranode, internode and idle) and an aggregate roll-up. This is the
//! debugging view used while developing the engines — a BSP run shows
//! wide idle bands at every round barrier, a DAKC run shows them only at
//! the drain — and it is exposed publicly because the same question
//! ("where did the time go on each PE?") is the first one a user asks of
//! any distributed run.

use crate::stats::SimReport;

/// Renders per-PE utilization bars from a report.
#[derive(Debug, Clone)]
pub struct Timeline<'a> {
    report: &'a SimReport,
    /// Width of a full bar in characters.
    pub width: usize,
}

impl<'a> Timeline<'a> {
    /// Creates a renderer with the default 48-character bars.
    pub fn new(report: &'a SimReport) -> Self {
        Self { report, width: 48 }
    }

    /// One PE's bar: `C` compute, `M` intranode memory, `N` internode,
    /// `B` barrier idle, `.` other idle — proportional to that PE's
    /// accounted time. Barrier idle is split out because it is the
    /// synchronization waste the FA-BSP design attacks: a BSP run shows
    /// wide `B` bands at every round, DAKC only at the drain.
    pub fn pe_bar(&self, pe: usize) -> String {
        let s = &self.report.pes[pe];
        let total = s.compute_s + s.intranode_s + s.internode_s + s.idle_s;
        if total <= 0.0 {
            return " ".repeat(self.width);
        }
        let barrier_idle = s.barrier_wait_s.min(s.idle_s);
        let mut bar = String::with_capacity(self.width);
        let segments = [
            (s.compute_s, 'C'),
            (s.intranode_s, 'M'),
            (s.internode_s, 'N'),
            (barrier_idle, 'B'),
            (s.idle_s - barrier_idle, '.'),
        ];
        let mut emitted = 0usize;
        for (i, (secs, ch)) in segments.iter().enumerate() {
            let cells = if i + 1 == segments.len() {
                self.width - emitted
            } else {
                ((secs / total) * self.width as f64).round() as usize
            };
            let cells = cells.min(self.width - emitted);
            bar.extend(std::iter::repeat_n(*ch, cells));
            emitted += cells;
        }
        bar
    }

    /// A width-aligned ruler marking the virtual-time span of each program
    /// phase (`p0`, `p1`, …) under the same scale as the bars, or `None`
    /// when the run declared no phases via [`crate::Ctx::set_phase`].
    pub fn phase_ruler(&self) -> Option<String> {
        let total = self.report.total_time;
        if self.report.phase_time.is_empty() || total <= 0.0 {
            return None;
        }
        let n = self.report.phase_time.len();
        let mut out = String::with_capacity(self.width);
        let mut emitted = 0usize;
        for (i, span) in self.report.phase_time.iter().enumerate() {
            let cells = if i + 1 == n {
                self.width - emitted
            } else {
                (((span / total) * self.width as f64).round() as usize)
                    .min(self.width - emitted)
            };
            if cells == 0 {
                continue;
            }
            let label = format!("p{i}");
            out.push('|');
            let mut used = 1usize;
            for c in label.chars().take(cells.saturating_sub(1)) {
                out.push(c);
                used += 1;
            }
            for _ in used..cells {
                out.push('-');
            }
            emitted += cells;
        }
        for _ in emitted..self.width {
            out.push('-');
        }
        Some(out)
    }

    /// The whole machine, one line per PE, with a legend, the makespan and
    /// (when phases were declared) a phase ruler above the bars.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "timeline ({} PEs, makespan {:.6}s) — C compute, M intranode, N internode, B barrier idle, . idle\n",
            self.report.pes.len(),
            self.report.total_time
        ));
        if let Some(ruler) = self.phase_ruler() {
            out.push_str(&format!("phase  |{ruler}|\n"));
        }
        for pe in 0..self.report.pes.len() {
            out.push_str(&format!("PE{pe:>4} |{}|\n", self.pe_bar(pe)));
        }
        out
    }

    /// A compact summary suitable for many-PE runs: min/median/max idle
    /// fraction across PEs, plus the aggregate split.
    pub fn summary(&self) -> String {
        let mut idle_frac: Vec<f64> = self
            .report
            .pes
            .iter()
            .map(|s| {
                let t = s.compute_s + s.intranode_s + s.internode_s + s.idle_s;
                if t > 0.0 {
                    s.idle_s / t
                } else {
                    0.0
                }
            })
            .collect();
        idle_frac.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pick = |q: f64| idle_frac[((idle_frac.len() - 1) as f64 * q) as usize];
        let [c, m, n] = self.report.busy_percentages();
        format!(
            "busy split {c:.1}%C / {m:.1}%M / {n:.1}%N; idle fraction min {:.2} median {:.2} max {:.2}",
            pick(0.0),
            pick(0.5),
            pick(1.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::sched::{Ctx, Program, Simulator, Step};

    fn report_for(ops: &[u64]) -> SimReport {
        struct Burn {
            ops: u64,
            state: u8,
        }
        impl Program for Burn {
            fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
                match self.state {
                    0 => {
                        ctx.charge_ops(self.ops);
                        self.state = 1;
                        Step::Barrier
                    }
                    _ => Step::Done,
                }
            }
        }
        let machine = MachineConfig::test_machine(1, ops.len());
        Simulator::new(machine)
            .run(ops
                .iter()
                .map(|&o| Box::new(Burn { ops: o, state: 0 }) as Box<dyn Program>)
                .collect())
            .unwrap()
    }

    #[test]
    fn bars_have_fixed_width() {
        let r = report_for(&[1_000_000, 4_000_000]);
        let t = Timeline::new(&r);
        assert_eq!(t.pe_bar(0).chars().count(), 48);
        assert_eq!(t.pe_bar(1).chars().count(), 48);
    }

    #[test]
    fn slow_pe_computes_fast_pe_idles() {
        let r = report_for(&[1_000_000, 10_000_000]);
        let t = Timeline::new(&r);
        let fast = t.pe_bar(0);
        let slow = t.pe_bar(1);
        let idle = |bar: &str| bar.matches(['.', 'B']).count();
        assert!(idle(&fast) > idle(&slow));
        assert!(slow.matches('C').count() > fast.matches('C').count());
    }

    #[test]
    fn barrier_wait_renders_as_b_overlay() {
        // The fast PE's idle time is spent waiting at the quiescence
        // barrier for the slow PE, so its bar must show `B`, not `.`.
        let r = report_for(&[1_000_000, 10_000_000]);
        let t = Timeline::new(&r);
        assert!(t.pe_bar(0).contains('B'), "{:?}", t.pe_bar(0));
        assert!(r.pes[0].barrier_wait_s > 0.0);
    }

    #[test]
    fn render_lists_every_pe() {
        let r = report_for(&[1, 2, 3]);
        let text = Timeline::new(&r).render();
        assert_eq!(text.lines().count(), 4); // header + 3 PEs
        assert!(text.contains("PE   2"));
    }

    #[test]
    fn summary_mentions_split() {
        let r = report_for(&[5_000_000, 5_000_000]);
        let s = Timeline::new(&r).summary();
        assert!(s.contains("busy split"));
        assert!(s.contains("idle fraction"));
    }

    #[test]
    fn phase_ruler_matches_declared_phases() {
        struct Phased {
            state: u8,
        }
        impl Program for Phased {
            fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
                match self.state {
                    0 => {
                        ctx.set_phase(0);
                        ctx.charge_ops(1_000_000);
                        self.state = 1;
                        Step::Barrier
                    }
                    1 => {
                        ctx.set_phase(1);
                        ctx.charge_ops(3_000_000);
                        self.state = 2;
                        Step::Barrier
                    }
                    _ => Step::Done,
                }
            }
        }
        let machine = MachineConfig::test_machine(1, 2);
        let r = Simulator::new(machine)
            .run(vec![
                Box::new(Phased { state: 0 }),
                Box::new(Phased { state: 0 }),
            ])
            .unwrap();
        let t = Timeline::new(&r);
        let ruler = t.phase_ruler().expect("two phases declared");
        assert_eq!(ruler.chars().count(), t.width);
        assert!(ruler.contains("p0") && ruler.contains("p1"), "{ruler:?}");
        // p1 does 3x the work of p0, so it must occupy more cells.
        let p1_at = ruler.find("|p1").unwrap();
        assert!(t.width - p1_at > p1_at, "{ruler:?}");
        assert!(t.render().contains("phase  |"));
    }

    #[test]
    fn no_phases_no_ruler() {
        let r = report_for(&[1, 2]);
        assert!(Timeline::new(&r).phase_ruler().is_none());
        assert_eq!(Timeline::new(&r).render().lines().count(), 3);
    }

    #[test]
    fn zero_work_bar_is_blank() {
        // A report with genuinely zero accounting (no compute, no barrier
        // idle) renders a blank bar rather than panicking on the 0/0.
        struct Quit;
        impl Program for Quit {
            fn step(&mut self, _ctx: &mut Ctx<'_>) -> Step {
                Step::Done
            }
        }
        let r = Simulator::new(MachineConfig::test_machine(1, 2))
            .run(vec![Box::new(Quit), Box::new(Quit)])
            .unwrap();
        let t = Timeline::new(&r);
        assert_eq!(t.pe_bar(0).trim(), "");
    }
}
