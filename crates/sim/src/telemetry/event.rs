//! Trace event vocabulary.
//!
//! One variant per instrumented point in the stack: the simulator core
//! (messages, barriers, phases, memory), the conveyor layer (L0 PUT
//! flushes, hop-routed records), and the aggregation cascade (L1 packet
//! drains, L2 packet ships, L3 batch flushes). Events are small POD values
//! so recording one is a handful of moves.

/// A single trace event: *when*, *where*, *what*.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Timestamp in seconds — virtual time in the simulator, wall-clock
    /// seconds since run start in the threaded engine.
    pub ts: f64,
    /// The PE (simulator) or worker thread (threaded engine) that recorded
    /// the event.
    pub pe: u32,
    /// What happened.
    pub kind: EventKind,
}

/// What happened at an instrumented point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A message left this PE.
    MsgSend {
        /// Destination PE.
        dst: u32,
        /// Channel tag.
        tag: u32,
        /// Payload bytes.
        bytes: u32,
    },
    /// A message was delivered through `poll`.
    MsgDeliver {
        /// Originating PE.
        src: u32,
        /// Channel tag.
        tag: u32,
        /// Payload bytes.
        bytes: u32,
    },
    /// An L0 conveyor PUT buffer was flushed onto the wire.
    PutFlush {
        /// Next-hop PE the buffer was sent to.
        hop: u32,
        /// Bytes in the flushed buffer.
        bytes: u32,
        /// Percent of the configured `C0` capacity that was used.
        fill_pct: u8,
    },
    /// The L1 actor stage drained its staged packets into the conveyor.
    L1Drain {
        /// Packets drained.
        packets: u32,
    },
    /// An L2 packet was shipped to its destination PE.
    L2Ship {
        /// Destination PE.
        dst: u32,
        /// k-mer records in the packet.
        records: u32,
        /// Percent of the configured `C2` capacity that was used.
        fill_pct: u8,
        /// Heavy-hitter (`{k-mer, count}` pair) packet rather than plain.
        heavy: bool,
    },
    /// The L3 pre-accumulation buffer was flushed.
    L3Flush {
        /// Occurrences in the buffer at flush.
        occupancy: u32,
        /// Configured `C3` capacity.
        cap: u32,
    },
    /// The PE entered the global barrier.
    BarrierEnter,
    /// The PE left the barrier (woken by a late message or released).
    BarrierExit {
        /// Seconds spent inside since the matching enter.
        waited_s: f64,
    },
    /// The PE entered a program phase.
    Phase {
        /// 0-based phase id.
        phase: u32,
    },
    /// Memory was allocated.
    MemAlloc {
        /// Bytes allocated.
        bytes: u64,
        /// PE-local live bytes after the allocation.
        now: u64,
    },
    /// Memory was freed.
    MemFree {
        /// Bytes freed.
        bytes: u64,
        /// PE-local live bytes after the free.
        now: u64,
    },
    /// An allocation tripped the node budget.
    Oom {
        /// Bytes of the failed allocation.
        bytes: u64,
    },
    /// Counter sample: pending (undelivered) messages in this PE's inbox.
    QueueDepth {
        /// Messages pending after the poll.
        depth: u32,
    },
    /// Counter sample: live bytes on a node.
    NodeMem {
        /// Node id.
        node: u32,
        /// Live bytes.
        bytes: u64,
    },
    /// A sampled causal flow opened: an L2 packet was tagged and shipped
    /// toward its owner (the Chrome-trace flow-arrow start, `ph:"s"`).
    FlowSend {
        /// Flow id (see [`crate::telemetry::flow::FlowTag::id`]).
        flow: u64,
        /// Application channel (NORMAL/HEAVY/SINGLE).
        channel: u8,
        /// Final destination PE.
        dst: u32,
    },
    /// A wire send stalled and backed off before retrying (real transports
    /// only — the simulator's wire never blocks).
    NetRetry {
        /// Destination rank the stalled frame was headed to.
        dst: u32,
        /// 1-based retry attempt for this stall.
        attempt: u32,
        /// Jittered backoff slept before the retry, in microseconds.
        delay_us: u64,
    },
    /// The chaos layer injected a fault (see
    /// [`EventKind::fault_name`] for the `kind` encoding).
    NetFault {
        /// Fault kind tag — stable small integer so the event stays `Copy`.
        kind: u8,
    },
    /// A sampled causal flow closed at its destination: the packet's
    /// records were accumulated (the flow-arrow end, `ph:"f"`). Stage
    /// residencies telescope: they are non-negative and sum to `e2e_s`.
    FlowRecv {
        /// Flow id pairing this close with its [`EventKind::FlowSend`].
        flow: u64,
        /// Application channel (NORMAL/HEAVY/SINGLE).
        channel: u8,
        /// PE that opened the flow.
        src: u32,
        /// L3 batch wait: first k-mer entered L3 → entered the L2 packet.
        l3_s: f64,
        /// L2 pack wait: packet opened → packet shipped to L1.
        l2_s: f64,
        /// L1 buffer wait: shipped to L1 → drained into the L0 conveyor.
        l1_s: f64,
        /// L0 buffer wait: drained into L0 → PUT flushed onto the wire.
        l0_s: f64,
        /// In-flight: wire PUT → delivery at the destination PE.
        net_s: f64,
        /// Drain-queue wait: delivery → records accumulated.
        drain_s: f64,
        /// End-to-end latency (sum of the six stages above).
        e2e_s: f64,
    },
}

impl EventKind {
    /// Short stable name used for trace-track labels.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::MsgSend { .. } => "msg_send",
            EventKind::MsgDeliver { .. } => "msg_deliver",
            EventKind::PutFlush { .. } => "put_flush",
            EventKind::L1Drain { .. } => "l1_drain",
            EventKind::L2Ship { .. } => "l2_ship",
            EventKind::L3Flush { .. } => "l3_flush",
            EventKind::BarrierEnter => "barrier_enter",
            EventKind::BarrierExit { .. } => "barrier",
            EventKind::Phase { .. } => "phase",
            EventKind::MemAlloc { .. } => "mem_alloc",
            EventKind::MemFree { .. } => "mem_free",
            EventKind::Oom { .. } => "oom",
            EventKind::QueueDepth { .. } => "queue_depth",
            EventKind::NodeMem { .. } => "node_mem",
            EventKind::NetRetry { .. } => "net_retry",
            EventKind::NetFault { .. } => "net_fault",
            EventKind::FlowSend { .. } => "flow_send",
            EventKind::FlowRecv { .. } => "flow_recv",
        }
    }

    /// Encodes a chaos fault name as the stable tag carried by
    /// [`EventKind::NetFault`]. Unknown names map to the reserved tag 0.
    pub fn fault_tag(name: &str) -> u8 {
        match name {
            "drop" => 1,
            "dup" => 2,
            "delay" => 3,
            "truncate" => 4,
            "die" => 5,
            "freeze" => 6,
            "corrupt" => 7,
            _ => 0,
        }
    }

    /// Decodes a [`EventKind::NetFault`] tag back to the fault name.
    pub fn fault_name(kind: u8) -> &'static str {
        match kind {
            1 => "drop",
            2 => "dup",
            3 => "delay",
            4 => "truncate",
            5 => "die",
            6 => "freeze",
            7 => "corrupt",
            _ => "unknown",
        }
    }
}
