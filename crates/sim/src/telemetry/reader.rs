//! Chrome-trace reader: the parsed-event API of the telemetry layer.
//!
//! [`super::chrome::chrome_trace`] is a write-only export; this module is
//! its inverse, turning a trace document back into the [`Event`] stream it
//! was rendered from so post-run tooling (the `dakc analyze` subcommand)
//! can consume the same artifacts Perfetto does instead of requiring a
//! side channel. Reading is lossy only where the export was: event order
//! and timestamps survive (µs precision), and rows the reader does not
//! recognize are counted, not fatal, so traces from newer writers still
//! load.

use super::event::{Event, EventKind};
use super::json::{parse, JsonValue};

/// A trace document decoded back into events.
#[derive(Debug, Clone, Default)]
pub struct ParsedTrace {
    /// Reconstructed events, in file order.
    pub events: Vec<Event>,
    /// `(pe, node)` pairs from the thread-name metadata records — the
    /// pid/tid layout the writer used (`node = pe / ppn` for simulator
    /// traces, `node = rank` for merged launch traces).
    pub pe_node: Vec<(u32, u32)>,
    /// The optional top-level `"dakc"` metadata object
    /// (see [`super::chrome::chrome_trace_with`]).
    pub dakc: Option<JsonValue>,
    /// Rows that were valid JSON but not a recognized event shape.
    pub skipped: usize,
}

impl ParsedTrace {
    /// Number of distinct process tracks (nodes or ranks) in the trace.
    pub fn nodes(&self) -> usize {
        let mut ids: Vec<u32> = self.pe_node.iter().map(|&(_, n)| n).collect();
        ids.extend(self.events.iter().map(|e| e.pe));
        if self.pe_node.is_empty() {
            ids.sort_unstable();
            ids.dedup();
            return ids.len();
        }
        self.pe_node.iter().map(|&(_, n)| n).max().map_or(0, |m| m as usize + 1)
    }

    /// The node (process track) a PE was rendered on, falling back to the
    /// PE id itself when the trace carried no metadata for it.
    pub fn node_of(&self, pe: u32) -> u32 {
        self.pe_node.iter().find(|&&(p, _)| p == pe).map_or(pe, |&(_, n)| n)
    }
}

/// Microseconds per second (trace-event timestamps are µs).
const US: f64 = 1e6;

fn num(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(JsonValue::as_f64)
}

fn arg_num(v: &JsonValue, key: &str) -> Option<f64> {
    v.get("args").and_then(|a| a.get(key)).and_then(JsonValue::as_f64)
}

fn arg_u64(v: &JsonValue, key: &str) -> Option<u64> {
    arg_num(v, key).map(|f| f as u64)
}

/// Decodes one `ph:"i"` instant row by its name.
fn decode_instant(name: &str, row: &JsonValue) -> Option<EventKind> {
    let u = |k: &str| arg_u64(row, k);
    Some(match name {
        "msg_send" => EventKind::MsgSend {
            dst: u("dst")? as u32,
            tag: u("tag")? as u32,
            bytes: u("bytes")? as u32,
        },
        "msg_deliver" => EventKind::MsgDeliver {
            src: u("src")? as u32,
            tag: u("tag")? as u32,
            bytes: u("bytes")? as u32,
        },
        "put_flush" => EventKind::PutFlush {
            hop: u("hop")? as u32,
            bytes: u("bytes")? as u32,
            fill_pct: u("fill_pct")? as u8,
        },
        "l1_drain" => EventKind::L1Drain { packets: u("packets")? as u32 },
        "l2_ship" => EventKind::L2Ship {
            dst: u("dst")? as u32,
            records: u("records")? as u32,
            fill_pct: u("fill_pct")? as u8,
            heavy: matches!(
                row.get("args").and_then(|a| a.get("heavy")),
                Some(JsonValue::Bool(true))
            ),
        },
        "l3_flush" => EventKind::L3Flush {
            occupancy: u("occupancy")? as u32,
            cap: u("cap")? as u32,
        },
        "phase" => EventKind::Phase { phase: u("phase")? as u32 },
        "mem_alloc" => EventKind::MemAlloc { bytes: u("bytes")?, now: u("now")? },
        "mem_free" => EventKind::MemFree { bytes: u("bytes")?, now: u("now")? },
        "oom" => EventKind::Oom { bytes: u("bytes")? },
        "net_retry" => EventKind::NetRetry {
            dst: u("dst")? as u32,
            attempt: u("attempt")? as u32,
            delay_us: u("delay_us")?,
        },
        "net_fault" => EventKind::NetFault {
            kind: EventKind::fault_tag(
                row.get("args")
                    .and_then(|a| a.get("fault"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or(""),
            ),
        },
        _ => return None,
    })
}

/// Decodes one row of the `traceEvents` array, or `None` for rows that
/// are not events (metadata) or not a recognized shape.
fn decode_row(row: &JsonValue) -> Option<Event> {
    let ph = row.get("ph").and_then(JsonValue::as_str)?;
    let ts = num(row, "ts")? / US;
    let pe = num(row, "tid")? as u32;
    let name = row.get("name").and_then(JsonValue::as_str).unwrap_or("");
    let kind = match ph {
        "i" => decode_instant(name, row)?,
        "B" if name == "barrier" => EventKind::BarrierEnter,
        "E" if name == "barrier" => {
            EventKind::BarrierExit { waited_s: arg_num(row, "waited_s").unwrap_or(0.0) }
        }
        "C" => {
            if let Some(pe_str) = name.strip_prefix("queue_depth/pe") {
                let _: u32 = pe_str.parse().ok()?;
                EventKind::QueueDepth { depth: arg_u64(row, "depth")? as u32 }
            } else if name == "node_mem" {
                EventKind::NodeMem { node: num(row, "pid")? as u32, bytes: arg_u64(row, "bytes")? }
            } else {
                return None;
            }
        }
        "s" if name == "msgflow" => EventKind::FlowSend {
            flow: num(row, "id")? as u64,
            channel: arg_u64(row, "channel")? as u8,
            dst: arg_u64(row, "dst")? as u32,
        },
        "f" if name == "msgflow" => EventKind::FlowRecv {
            flow: num(row, "id")? as u64,
            channel: arg_u64(row, "channel")? as u8,
            src: arg_u64(row, "src")? as u32,
            l3_s: arg_num(row, "l3_s")?,
            l2_s: arg_num(row, "l2_s")?,
            l1_s: arg_num(row, "l1_s")?,
            l0_s: arg_num(row, "l0_s")?,
            net_s: arg_num(row, "net_s")?,
            drain_s: arg_num(row, "drain_s")?,
            e2e_s: arg_num(row, "e2e_s")?,
        },
        _ => return None,
    };
    Some(Event { ts, pe, kind })
}

/// Parses a Chrome trace-event document produced by
/// [`super::chrome::chrome_trace`] (or `chrome_trace_with`) back into its
/// event stream.
///
/// Errors on malformed JSON or a missing `traceEvents` array; individual
/// unrecognized rows are tolerated and tallied in
/// [`ParsedTrace::skipped`].
pub fn read_chrome_trace(body: &str) -> Result<ParsedTrace, String> {
    let doc = parse(body)?;
    let rows = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("trace: missing traceEvents array")?;
    let mut out = ParsedTrace { dakc: doc.get("dakc").cloned(), ..ParsedTrace::default() };
    for row in rows {
        let ph = row.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        if ph == "M" {
            // thread_name metadata carries the pe → node (tid → pid) map.
            if row.get("name").and_then(JsonValue::as_str) == Some("thread_name") {
                if let (Some(pid), Some(tid)) = (num(row, "pid"), num(row, "tid")) {
                    out.pe_node.push((tid as u32, pid as u32));
                }
            }
            continue;
        }
        match decode_row(row) {
            Some(e) => out.events.push(e),
            None => out.skipped += 1,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::chrome::{chrome_trace, chrome_trace_with};
    use proptest::prelude::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event { ts: 0.0, pe: 0, kind: EventKind::Phase { phase: 1 } },
            Event { ts: 1e-6, pe: 0, kind: EventKind::MsgSend { dst: 1, tag: 7, bytes: 128 } },
            Event { ts: 2e-6, pe: 1, kind: EventKind::MsgDeliver { src: 0, tag: 7, bytes: 128 } },
            Event { ts: 3e-6, pe: 1, kind: EventKind::BarrierEnter },
            Event { ts: 4e-6, pe: 1, kind: EventKind::BarrierExit { waited_s: 1e-6 } },
            Event { ts: 5e-6, pe: 0, kind: EventKind::QueueDepth { depth: 3 } },
            Event { ts: 6e-6, pe: 0, kind: EventKind::NodeMem { node: 0, bytes: 4096 } },
            Event { ts: 7e-6, pe: 0, kind: EventKind::FlowSend { flow: 9, channel: 1, dst: 3 } },
            Event {
                ts: 9e-6,
                pe: 3,
                kind: EventKind::FlowRecv {
                    flow: 9,
                    channel: 1,
                    src: 0,
                    l3_s: 1e-6,
                    l2_s: 0.0,
                    l1_s: 0.0,
                    l0_s: 0.0,
                    net_s: 1e-6,
                    drain_s: 0.0,
                    e2e_s: 2e-6,
                },
            },
            Event { ts: 10e-6, pe: 2, kind: EventKind::NetFault { kind: 3 } },
        ]
    }

    #[test]
    fn round_trips_every_event() {
        let events = sample_events();
        let parsed = read_chrome_trace(&chrome_trace(&events, 2)).unwrap();
        assert_eq!(parsed.skipped, 0, "every row recognized");
        assert_eq!(parsed.events.len(), events.len());
        for (orig, back) in events.iter().zip(&parsed.events) {
            assert_eq!(orig.pe, back.pe);
            assert!((orig.ts - back.ts).abs() < 1e-12, "{} vs {}", orig.ts, back.ts);
            assert_eq!(orig.kind, back.kind);
        }
        // ppn=2: pes {0,1,2,3} → nodes {0,0,1,1}.
        assert_eq!(parsed.nodes(), 2);
        assert_eq!(parsed.node_of(3), 1);
    }

    #[test]
    fn reads_dakc_meta_and_tolerates_unknown_rows() {
        let body = chrome_trace_with(&sample_events(), 1, Some("{\"ranks\":4}"));
        // Splice in a row from a hypothetical future writer.
        let body = body.replace(
            "{\"traceEvents\":[\n",
            "{\"traceEvents\":[\n{\"name\":\"quantum_event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":0,\"ts\":0,\"args\":{}},\n",
        );
        let parsed = read_chrome_trace(&body).unwrap();
        assert_eq!(parsed.skipped, 1);
        assert_eq!(parsed.events.len(), sample_events().len());
        assert_eq!(
            parsed.dakc.as_ref().and_then(|d| d.get("ranks")).and_then(JsonValue::as_f64),
            Some(4.0)
        );
    }

    #[test]
    fn rejects_non_trace_json() {
        assert!(read_chrome_trace("not json").is_err());
        assert!(read_chrome_trace("{\"counters\":{}}").is_err());
    }

    proptest! {
        // Write → read is the identity on the event stream (timestamps to
        // µs export precision).
        #[test]
        fn write_read_round_trip(
            raw in prop::collection::vec((any::<u32>(), any::<u64>(), any::<u64>()), 1..40),
        ) {
            let events: Vec<Event> = raw
                .iter()
                .map(|&(a, b, tbits)| {
                    let ts = (tbits % 1_000_000_000) as f64 * 1e-6;
                    Event {
                        ts,
                        pe: a % 8,
                        kind: EventKind::MsgSend {
                            dst: (a / 8) % 8,
                            tag: a,
                            bytes: (b % (1 << 20)) as u32,
                        },
                    }
                })
                .collect();
            let parsed = read_chrome_trace(&chrome_trace(&events, 4)).unwrap();
            prop_assert_eq!(parsed.events.len(), events.len());
            prop_assert_eq!(parsed.skipped, 0);
            for (orig, back) in events.iter().zip(&parsed.events) {
                prop_assert_eq!(&orig.kind, &back.kind);
                prop_assert!((orig.ts - back.ts).abs() < 1e-9);
            }
        }
    }
}
