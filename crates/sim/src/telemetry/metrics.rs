//! Named counters and fixed-bucket histograms.
//!
//! Means hide exactly what the paper's tuning decisions need: whether L2
//! packets ship full or half-empty, whether L3 batches flush at capacity,
//! how long each PE sat in the barrier. A [`Histogram`] answers those as a
//! distribution; the [`MetricsRegistry`] keys them by name with
//! deterministic (sorted) iteration so two identical runs render
//! byte-identical JSON.

use std::collections::BTreeMap;

use super::json::escape;

/// Bucket bounds for percent-valued metrics (fill ratios, occupancy).
pub const PCT_BOUNDS: &[f64] = &[10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0];

/// Bucket bounds for payload sizes in bytes (powers of four).
pub const BYTES_BOUNDS: &[f64] =
    &[64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0];

/// Bucket bounds for barrier waits in (virtual) seconds.
pub const SECONDS_BOUNDS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0];

/// Bucket bounds for message hop counts.
pub const HOPS_BOUNDS: &[f64] = &[0.0, 1.0, 2.0, 3.0, 4.0];

/// Bucket bounds for message-latency seconds: a 1–2–5 ladder per decade
/// from 100 ns to 1 s. Fine enough that an interpolated percentile
/// ([`Histogram::quantile`]) is off by at most one bucket width — ≤ 2.5×
/// relative on this ladder — versus the 10× a decade-per-bucket ladder
/// like [`SECONDS_BOUNDS`] would allow.
pub const LATENCY_BOUNDS: &[f64] = &[
    1e-7, 2e-7, 5e-7, 1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,
];

/// A fixed-bucket histogram with conserved totals under merge.
///
/// `counts[i]` counts observations `v <= bounds[i]` (and greater than the
/// previous bound); the final slot counts overflow beyond the last bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over `bounds` (must be non-empty and ascending).
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records `n` identical observations of `v` (used to fold locally
    /// accumulated per-record tallies in one call).
    pub fn observe_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        let slot = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += n;
        self.sum += v * n as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds `other` into `self`. Merging is associative and commutative and
    /// conserves total counts; both sides must share bucket bounds.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count() > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count() > 0).then_some(self.max)
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation *within* the containing bucket, Prometheus-style.
    ///
    /// The rank `q·n` is located by walking the cumulative bucket counts;
    /// the estimate then assumes in-bucket observations are uniformly
    /// spread over `(lower, upper]`. The result always lies inside the
    /// bucket that truly contains the ranked observation, so the absolute
    /// error is bounded by that bucket's width (the first bucket is
    /// tightened to start at `min`, the overflow bucket to end at `max`,
    /// and the estimate is clamped to `[min, max]`). `q = 0` returns the
    /// exact `min`, `q = 1` the exact `max`; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        let target = q * n as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if (cum as f64) >= target {
                // First bucket with cum >= target also has c > 0
                // (earlier buckets left cum == prev < target).
                let lower = if i == 0 { self.min } else { self.bounds[i - 1] };
                let upper = if i < self.bounds.len() { self.bounds[i] } else { self.max };
                let frac = (target - prev as f64) / c as f64;
                let est = lower + frac * (upper - lower);
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Rebuilds a histogram from its serialized parts (the inverse of the
    /// JSON rendering), so per-process registries can be gathered across
    /// a wire. `min`/`max` are `None` for an empty histogram.
    pub fn from_parts(
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        min: Option<f64>,
        max: Option<f64>,
    ) -> Result<Self, String> {
        if bounds.is_empty() || !bounds.windows(2).all(|w| w[0] < w[1]) {
            return Err("bounds must be non-empty and strictly ascending".into());
        }
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "counts length {} != bounds length {} + 1",
                counts.len(),
                bounds.len()
            ));
        }
        let total: u64 = counts.iter().sum();
        if (total == 0) != (min.is_none() && max.is_none()) {
            return Err("min/max must be present exactly when counts are nonzero".into());
        }
        Ok(Self {
            bounds,
            counts,
            sum,
            min: min.unwrap_or(f64::INFINITY),
            max: max.unwrap_or(f64::NEG_INFINITY),
        })
    }

    fn to_json(&self, out: &mut String) {
        out.push_str("{\"bounds\":[");
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&fmt_num(*b));
        }
        out.push_str("],\"counts\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str("],\"count\":");
        out.push_str(&self.count().to_string());
        out.push_str(",\"sum\":");
        out.push_str(&fmt_num(self.sum));
        if self.count() > 0 {
            out.push_str(",\"min\":");
            out.push_str(&fmt_num(self.min));
            out.push_str(",\"max\":");
            out.push_str(&fmt_num(self.max));
        }
        out.push('}');
    }
}

/// Formats an f64 as JSON (no NaN/Inf — clamped to null-safe 0).
pub(crate) fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Named counters + histograms with deterministic iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name` (creating it at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += by,
            None => {
                self.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Records `v` into histogram `name`, creating it over `bounds` on
    /// first use. Later calls ignore `bounds` (the first registration
    /// wins), so pass the same constant everywhere.
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                let mut h = Histogram::with_bounds(bounds);
                h.observe(v);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Records `n` identical observations of `v` into histogram `name`
    /// (see [`MetricsRegistry::observe`] for the bounds contract).
    pub fn observe_n(&mut self, name: &str, bounds: &[f64], v: f64, n: u64) {
        if n == 0 {
            return;
        }
        match self.histograms.get_mut(name) {
            Some(h) => h.observe_n(v, n),
            None => {
                let mut h = Histogram::with_bounds(bounds);
                h.observe_n(v, n);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Counter value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, name-sorted.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Merges `other` into `self` (counters add, histograms merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.inc(k, *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Deterministic JSON rendering:
    /// `{"counters":{...},"histograms":{name:{bounds,counts,count,sum,min,max}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape(k));
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape(k));
            out.push_str("\":");
            h.to_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// Parses a registry back from [`MetricsRegistry::to_json`] output.
    /// Round-trips every counter exactly; histogram `sum`/`min`/`max` go
    /// through decimal text (f64 `Display` prints shortest-roundtrip, so
    /// in practice these are exact too). Used to gather per-rank
    /// registries from worker processes.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = super::json::parse(text)?;
        let mut m = Self::new();
        let counters = v
            .get("counters")
            .and_then(|c| c.as_obj())
            .ok_or("missing counters object")?;
        for (name, val) in counters {
            let n = val.as_f64().ok_or_else(|| format!("counter {name} not a number"))?;
            m.counters.insert(name.clone(), n as u64);
        }
        let histograms = v
            .get("histograms")
            .and_then(|h| h.as_obj())
            .ok_or("missing histograms object")?;
        for (name, hv) in histograms {
            let nums = |key: &str| -> Result<Vec<f64>, String> {
                hv.get(key)
                    .and_then(|a| a.as_arr())
                    .ok_or_else(|| format!("histogram {name} missing {key}"))?
                    .iter()
                    .map(|x| x.as_f64().ok_or_else(|| format!("{name}.{key}: not a number")))
                    .collect()
            };
            let bounds = nums("bounds")?;
            let counts: Vec<u64> = nums("counts")?.into_iter().map(|c| c as u64).collect();
            let sum = hv
                .get("sum")
                .and_then(|s| s.as_f64())
                .ok_or_else(|| format!("histogram {name} missing sum"))?;
            let min = hv.get("min").and_then(|x| x.as_f64());
            let max = hv.get("max").and_then(|x| x.as_f64());
            let h = Histogram::from_parts(bounds, counts, sum, min, max)
                .map_err(|e| format!("histogram {name}: {e}"))?;
            m.histograms.insert(name.clone(), h);
        }
        Ok(m)
    }

    /// Human-readable rendering, one metric per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<28} {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k:<28} n={} mean={:.3} min={:.3} max={:.3}\n",
                h.count(),
                h.mean(),
                h.min().unwrap_or(0.0),
                h.max().unwrap_or(0.0)
            ));
            let total = h.count().max(1);
            let labels: Vec<String> = h
                .bounds
                .iter()
                .map(|b| format!("<={b}"))
                .chain(std::iter::once(format!(">{}", h.bounds.last().unwrap())))
                .collect();
            for (label, c) in labels.iter().zip(&h.counts) {
                if *c == 0 {
                    continue;
                }
                let bar = "#".repeat(((c * 40) / total).max(1) as usize);
                out.push_str(&format!("  {label:>12} {c:>8} {bar}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_totals() {
        let mut h = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(500.0));
    }

    #[test]
    fn merge_conserves_and_is_associative() {
        let mk = |vals: &[f64]| {
            let mut h = Histogram::with_bounds(PCT_BOUNDS);
            for &v in vals {
                h.observe(v);
            }
            h
        };
        let a = mk(&[5.0, 60.0]);
        let b = mk(&[95.0]);
        let c = mk(&[100.0, 12.0, 30.0]);

        // (a+b)+c == a+(b+c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.count(), 6);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::with_bounds(&[10.0, 20.0, 30.0]);
        // 10 observations spread uniformly over (10, 20].
        for i in 1..=10 {
            h.observe(10.0 + i as f64);
        }
        assert_eq!(h.quantile(0.0), Some(11.0)); // exact min
        assert_eq!(h.quantile(1.0), Some(20.0)); // exact max
        // All mass in the (10, 20] bucket: the median interpolates to 15,
        // within one bucket width of the naive sorted-vec answer.
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 15.0).abs() < 1e-9, "p50 = {p50}");
        // Estimates never leave [min, max].
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let v = h.quantile(q).unwrap();
            assert!((11.0..=20.0).contains(&v), "q={q} -> {v}");
        }
    }

    #[test]
    fn quantile_handles_overflow_bucket_and_empty() {
        assert_eq!(Histogram::with_bounds(&[1.0]).quantile(0.5), None);
        let mut h = Histogram::with_bounds(&[1.0]);
        h.observe(5.0);
        h.observe(9.0);
        // Both observations overflow: quantiles stay within [5, 9].
        let p50 = h.quantile(0.5).unwrap();
        assert!((5.0..=9.0).contains(&p50));
        assert_eq!(h.quantile(1.0), Some(9.0));
    }

    #[test]
    fn registry_json_is_sorted_and_parses() {
        let mut m = MetricsRegistry::new();
        m.inc("z.last", 2);
        m.inc("a.first", 1);
        m.observe("fill", PCT_BOUNDS, 50.0);
        let j = m.to_json();
        assert!(j.find("a.first").unwrap() < j.find("z.last").unwrap());
        let parsed = crate::telemetry::json::parse(&j).expect("valid JSON");
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("a.first")).and_then(|v| v.as_f64()),
            Some(1.0)
        );
    }

    #[test]
    fn json_round_trip() {
        let mut m = MetricsRegistry::new();
        m.inc("net.frames_sent", 12345);
        m.inc("a", 0);
        m.observe("lat", LATENCY_BOUNDS, 3.2e-4);
        m.observe("lat", LATENCY_BOUNDS, 7.5e-2);
        m.observe_n("fill", PCT_BOUNDS, 50.0, 7);
        let back = MetricsRegistry::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_json(), m.to_json());
    }

    #[test]
    fn json_round_trip_empty_histogram_rejected_without_counts() {
        assert!(Histogram::from_parts(vec![1.0], vec![0, 0], 0.0, Some(1.0), None).is_err());
        assert!(Histogram::from_parts(vec![1.0], vec![0], 0.0, None, None).is_err());
        let h = Histogram::from_parts(vec![1.0], vec![0, 0], 0.0, None, None).unwrap();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn registry_merge_adds() {
        let mut a = MetricsRegistry::new();
        a.inc("x", 1);
        a.observe("h", PCT_BOUNDS, 10.0);
        let mut b = MetricsRegistry::new();
        b.inc("x", 2);
        b.inc("y", 5);
        b.observe("h", PCT_BOUNDS, 90.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 5);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }
}
