//! Compact binary encoding for [`Event`] streams.
//!
//! The distributed runtime gathers every rank's flight-recorder contents
//! onto rank 0 (alongside the metrics JSON) before the merged Chrome trace
//! is written. Traces can run to a million events, so they ride the wire
//! in this fixed little-endian layout rather than JSON:
//!
//! ```text
//!   per event:  [ts f64 LE][pe u32 LE][kind u8][variant fields ...]
//! ```
//!
//! Field order within a variant matches declaration order in
//! [`EventKind`]; `bool` is one byte (0/1). The format is internal to one
//! run — encoder and decoder always come from the same binary — so there
//! is no version header, but the decoder still rejects truncated or
//! unknown input with a typed error instead of panicking (gather frames
//! cross a real wire and chaos testing corrupts them on purpose).

use super::event::{Event, EventKind};

/// Encodes `events` into the wire layout described in the module docs.
pub fn encode_events(events: &[Event]) -> Vec<u8> {
    // FlowRecv is the largest variant (13 + 69 bytes); most are smaller.
    let mut out = Vec::with_capacity(events.len() * 32);
    for e in events {
        out.extend_from_slice(&e.ts.to_le_bytes());
        out.extend_from_slice(&e.pe.to_le_bytes());
        encode_kind(&e.kind, &mut out);
    }
    out
}

/// Decodes a byte stream produced by [`encode_events`].
pub fn decode_events(bytes: &[u8]) -> Result<Vec<Event>, String> {
    let mut c = Cursor { buf: bytes, at: 0 };
    let mut out = Vec::new();
    while c.at < c.buf.len() {
        let ts = c.f64()?;
        let pe = c.u32()?;
        let kind = decode_kind(&mut c)?;
        out.push(Event { ts, pe, kind });
    }
    Ok(out)
}

fn encode_kind(kind: &EventKind, out: &mut Vec<u8>) {
    match *kind {
        EventKind::MsgSend { dst, tag, bytes } => {
            out.push(0);
            out.extend_from_slice(&dst.to_le_bytes());
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        EventKind::MsgDeliver { src, tag, bytes } => {
            out.push(1);
            out.extend_from_slice(&src.to_le_bytes());
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        EventKind::PutFlush { hop, bytes, fill_pct } => {
            out.push(2);
            out.extend_from_slice(&hop.to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
            out.push(fill_pct);
        }
        EventKind::L1Drain { packets } => {
            out.push(3);
            out.extend_from_slice(&packets.to_le_bytes());
        }
        EventKind::L2Ship { dst, records, fill_pct, heavy } => {
            out.push(4);
            out.extend_from_slice(&dst.to_le_bytes());
            out.extend_from_slice(&records.to_le_bytes());
            out.push(fill_pct);
            out.push(heavy as u8);
        }
        EventKind::L3Flush { occupancy, cap } => {
            out.push(5);
            out.extend_from_slice(&occupancy.to_le_bytes());
            out.extend_from_slice(&cap.to_le_bytes());
        }
        EventKind::BarrierEnter => out.push(6),
        EventKind::BarrierExit { waited_s } => {
            out.push(7);
            out.extend_from_slice(&waited_s.to_le_bytes());
        }
        EventKind::Phase { phase } => {
            out.push(8);
            out.extend_from_slice(&phase.to_le_bytes());
        }
        EventKind::MemAlloc { bytes, now } => {
            out.push(9);
            out.extend_from_slice(&bytes.to_le_bytes());
            out.extend_from_slice(&now.to_le_bytes());
        }
        EventKind::MemFree { bytes, now } => {
            out.push(10);
            out.extend_from_slice(&bytes.to_le_bytes());
            out.extend_from_slice(&now.to_le_bytes());
        }
        EventKind::Oom { bytes } => {
            out.push(11);
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        EventKind::QueueDepth { depth } => {
            out.push(12);
            out.extend_from_slice(&depth.to_le_bytes());
        }
        EventKind::NodeMem { node, bytes } => {
            out.push(13);
            out.extend_from_slice(&node.to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        EventKind::FlowSend { flow, channel, dst } => {
            out.push(14);
            out.extend_from_slice(&flow.to_le_bytes());
            out.push(channel);
            out.extend_from_slice(&dst.to_le_bytes());
        }
        EventKind::FlowRecv { flow, channel, src, l3_s, l2_s, l1_s, l0_s, net_s, drain_s, e2e_s } => {
            out.push(15);
            out.extend_from_slice(&flow.to_le_bytes());
            out.push(channel);
            out.extend_from_slice(&src.to_le_bytes());
            for v in [l3_s, l2_s, l1_s, l0_s, net_s, drain_s, e2e_s] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        EventKind::NetRetry { dst, attempt, delay_us } => {
            out.push(16);
            out.extend_from_slice(&dst.to_le_bytes());
            out.extend_from_slice(&attempt.to_le_bytes());
            out.extend_from_slice(&delay_us.to_le_bytes());
        }
        EventKind::NetFault { kind } => {
            out.push(17);
            out.push(kind);
        }
    }
}

fn decode_kind(c: &mut Cursor<'_>) -> Result<EventKind, String> {
    let tag = c.u8()?;
    Ok(match tag {
        0 => EventKind::MsgSend { dst: c.u32()?, tag: c.u32()?, bytes: c.u32()? },
        1 => EventKind::MsgDeliver { src: c.u32()?, tag: c.u32()?, bytes: c.u32()? },
        2 => EventKind::PutFlush { hop: c.u32()?, bytes: c.u32()?, fill_pct: c.u8()? },
        3 => EventKind::L1Drain { packets: c.u32()? },
        4 => EventKind::L2Ship {
            dst: c.u32()?,
            records: c.u32()?,
            fill_pct: c.u8()?,
            heavy: c.u8()? != 0,
        },
        5 => EventKind::L3Flush { occupancy: c.u32()?, cap: c.u32()? },
        6 => EventKind::BarrierEnter,
        7 => EventKind::BarrierExit { waited_s: c.f64()? },
        8 => EventKind::Phase { phase: c.u32()? },
        9 => EventKind::MemAlloc { bytes: c.u64()?, now: c.u64()? },
        10 => EventKind::MemFree { bytes: c.u64()?, now: c.u64()? },
        11 => EventKind::Oom { bytes: c.u64()? },
        12 => EventKind::QueueDepth { depth: c.u32()? },
        13 => EventKind::NodeMem { node: c.u32()?, bytes: c.u64()? },
        14 => EventKind::FlowSend { flow: c.u64()?, channel: c.u8()?, dst: c.u32()? },
        15 => EventKind::FlowRecv {
            flow: c.u64()?,
            channel: c.u8()?,
            src: c.u32()?,
            l3_s: c.f64()?,
            l2_s: c.f64()?,
            l1_s: c.f64()?,
            l0_s: c.f64()?,
            net_s: c.f64()?,
            drain_s: c.f64()?,
            e2e_s: c.f64()?,
        },
        16 => EventKind::NetRetry { dst: c.u32()?, attempt: c.u32()?, delay_us: c.u64()? },
        17 => EventKind::NetFault { kind: c.u8()? },
        other => return Err(format!("unknown event tag {other} at byte {}", c.at - 1)),
    })
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], String> {
        let end = self.at.checked_add(N).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            format!("truncated event stream at byte {} (need {N} more)", self.at)
        })?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.at..end]);
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_of_each() -> Vec<Event> {
        let kinds = vec![
            EventKind::MsgSend { dst: 3, tag: 0xC0, bytes: 512 },
            EventKind::MsgDeliver { src: 1, tag: 0xC0, bytes: 512 },
            EventKind::PutFlush { hop: 2, bytes: 4096, fill_pct: 97 },
            EventKind::L1Drain { packets: 5 },
            EventKind::L2Ship { dst: 0, records: 32, fill_pct: 100, heavy: true },
            EventKind::L3Flush { occupancy: 9_000, cap: 10_000 },
            EventKind::BarrierEnter,
            EventKind::BarrierExit { waited_s: 0.0125 },
            EventKind::Phase { phase: 2 },
            EventKind::MemAlloc { bytes: 1 << 33, now: 1 << 34 },
            EventKind::MemFree { bytes: 1 << 33, now: 1 << 33 },
            EventKind::Oom { bytes: u64::MAX },
            EventKind::QueueDepth { depth: 17 },
            EventKind::NodeMem { node: 1, bytes: 123_456_789 },
            EventKind::FlowSend { flow: (7u64 << 40) | 9, channel: 1, dst: 3 },
            EventKind::FlowRecv {
                flow: (7u64 << 40) | 9,
                channel: 1,
                src: 7,
                l3_s: 1e-3,
                l2_s: 2e-3,
                l1_s: 0.0,
                l0_s: 3e-4,
                net_s: 5e-4,
                drain_s: 1e-5,
                e2e_s: 3.81e-3,
            },
            EventKind::NetRetry { dst: 2, attempt: 4, delay_us: 40_000 },
            EventKind::NetFault { kind: EventKind::fault_tag("drop") },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event { ts: i as f64 * 0.25, pe: (i % 4) as u32, kind })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_every_variant() {
        let events = one_of_each();
        let bytes = encode_events(&events);
        assert_eq!(decode_events(&bytes).expect("decodes"), events);
    }

    #[test]
    fn empty_stream_roundtrips() {
        assert!(encode_events(&[]).is_empty());
        assert_eq!(decode_events(&[]).expect("decodes"), Vec::new());
    }

    #[test]
    fn truncated_stream_is_a_typed_error() {
        let bytes = encode_events(&one_of_each());
        let err = decode_events(&bytes[..bytes.len() - 3]).expect_err("truncated");
        assert!(err.contains("truncated"), "got: {err}");
    }

    #[test]
    fn unknown_tag_is_a_typed_error() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1.0f64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(0xEE);
        let err = decode_events(&bytes).expect_err("unknown tag");
        assert!(err.contains("unknown event tag"), "got: {err}");
    }

    #[test]
    fn fault_tags_roundtrip_through_names() {
        for name in ["drop", "dup", "delay", "truncate", "die", "freeze", "corrupt"] {
            assert_eq!(EventKind::fault_name(EventKind::fault_tag(name)), name);
        }
        assert_eq!(EventKind::fault_name(EventKind::fault_tag("???")), "unknown");
    }
}
