//! Chrome trace-event JSON export.
//!
//! Renders a recorded event stream as the Trace Event Format understood by
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`: one
//! process per node, one thread track per PE, `"B"`/`"E"` duration slices
//! for barrier occupancy, `"i"` instants for everything punctual, and
//! `"C"` counter tracks for inbox queue depth and per-node live memory.
//! Timestamps are converted from seconds (virtual or wall-clock) to the
//! format's microseconds.
//!
//! The writer is hand-rolled and appends events in recording order with
//! `f64` rendered via `Display`, so identical runs export byte-identical
//! traces.

use super::event::{Event, EventKind};
use super::json::escape;
use super::metrics::fmt_num;

/// Microseconds per second — trace-event timestamps are in µs.
const US: f64 = 1e6;

/// Renders `events` as a complete Chrome trace-event JSON document.
///
/// `pes_per_node` maps PE ids onto process tracks (node = pe / ppn); pass
/// the machine's PEs-per-node for the simulator or the thread count for a
/// single-node threaded run.
pub fn chrome_trace(events: &[Event], pes_per_node: usize) -> String {
    chrome_trace_with(events, pes_per_node, None)
}

/// [`chrome_trace`] with an optional extra top-level `"dakc"` object.
///
/// `dakc_meta`, when present, must be a pre-rendered JSON value; it is
/// embedded verbatim as `{"traceEvents":[...],"dakc":<meta>}`. Perfetto
/// ignores unknown top-level keys, so the trace stays loadable while
/// carrying run metadata (rank count, per-peer traffic counters) for
/// post-run analysis.
pub fn chrome_trace_with(events: &[Event], pes_per_node: usize, dakc_meta: Option<&str>) -> String {
    let ppn = pes_per_node.max(1) as u32;
    let mut w = Writer::new();

    // Metadata: name each node process and PE thread once, in id order.
    let mut pes: Vec<u32> = events.iter().map(|e| e.pe).collect();
    pes.sort_unstable();
    pes.dedup();
    let mut nodes: Vec<u32> = pes.iter().map(|pe| pe / ppn).collect();
    nodes.dedup();
    for node in &nodes {
        w.meta("process_name", *node, 0, &format!("node{node}"));
    }
    for pe in &pes {
        w.meta("thread_name", pe / ppn, *pe, &format!("pe{pe}"));
    }

    for e in events {
        let node = e.pe / ppn;
        let ts = e.ts * US;
        match e.kind {
            EventKind::MsgSend { dst, tag, bytes } => {
                w.instant(e, node, ts, &[
                    ("dst", Arg::U(dst as u64)),
                    ("tag", Arg::U(tag as u64)),
                    ("bytes", Arg::U(bytes as u64)),
                ]);
            }
            EventKind::MsgDeliver { src, tag, bytes } => {
                w.instant(e, node, ts, &[
                    ("src", Arg::U(src as u64)),
                    ("tag", Arg::U(tag as u64)),
                    ("bytes", Arg::U(bytes as u64)),
                ]);
            }
            EventKind::PutFlush { hop, bytes, fill_pct } => {
                w.instant(e, node, ts, &[
                    ("hop", Arg::U(hop as u64)),
                    ("bytes", Arg::U(bytes as u64)),
                    ("fill_pct", Arg::U(fill_pct as u64)),
                ]);
            }
            EventKind::L1Drain { packets } => {
                w.instant(e, node, ts, &[("packets", Arg::U(packets as u64))]);
            }
            EventKind::L2Ship { dst, records, fill_pct, heavy } => {
                w.instant(e, node, ts, &[
                    ("dst", Arg::U(dst as u64)),
                    ("records", Arg::U(records as u64)),
                    ("fill_pct", Arg::U(fill_pct as u64)),
                    ("heavy", Arg::B(heavy)),
                ]);
            }
            EventKind::L3Flush { occupancy, cap } => {
                w.instant(e, node, ts, &[
                    ("occupancy", Arg::U(occupancy as u64)),
                    ("cap", Arg::U(cap as u64)),
                ]);
            }
            EventKind::BarrierEnter => {
                w.slice('B', "barrier", node, e.pe, ts, &[]);
            }
            EventKind::BarrierExit { waited_s } => {
                w.slice('E', "barrier", node, e.pe, ts, &[("waited_s", Arg::F(waited_s))]);
            }
            EventKind::Phase { phase } => {
                w.instant(e, node, ts, &[("phase", Arg::U(phase as u64))]);
            }
            EventKind::MemAlloc { bytes, now } => {
                w.instant(e, node, ts, &[("bytes", Arg::U(bytes)), ("now", Arg::U(now))]);
            }
            EventKind::MemFree { bytes, now } => {
                w.instant(e, node, ts, &[("bytes", Arg::U(bytes)), ("now", Arg::U(now))]);
            }
            EventKind::Oom { bytes } => {
                w.instant(e, node, ts, &[("bytes", Arg::U(bytes))]);
            }
            EventKind::QueueDepth { depth } => {
                // Counter track per PE: pid = node, name carries the PE id
                // so tracks don't collapse into one series.
                w.counter(&format!("queue_depth/pe{}", e.pe), node, e.pe, ts, &[(
                    "depth",
                    Arg::U(depth as u64),
                )]);
            }
            EventKind::NodeMem { node: n, bytes } => {
                w.counter("node_mem", n, e.pe, ts, &[("bytes", Arg::U(bytes))]);
            }
            EventKind::NetRetry { dst, attempt, delay_us } => {
                w.instant(e, node, ts, &[
                    ("dst", Arg::U(dst as u64)),
                    ("attempt", Arg::U(attempt as u64)),
                    ("delay_us", Arg::U(delay_us)),
                ]);
            }
            EventKind::NetFault { kind } => {
                w.instant(e, node, ts, &[("fault", Arg::S(EventKind::fault_name(kind)))]);
            }
            EventKind::FlowSend { flow, channel, dst } => {
                w.flow('s', flow, node, e.pe, ts, &[
                    ("channel", Arg::U(channel as u64)),
                    ("dst", Arg::U(dst as u64)),
                ]);
            }
            EventKind::FlowRecv {
                flow,
                channel,
                src,
                l3_s,
                l2_s,
                l1_s,
                l0_s,
                net_s,
                drain_s,
                e2e_s,
            } => {
                w.flow('f', flow, node, e.pe, ts, &[
                    ("channel", Arg::U(channel as u64)),
                    ("src", Arg::U(src as u64)),
                    ("l3_s", Arg::F(l3_s)),
                    ("l2_s", Arg::F(l2_s)),
                    ("l1_s", Arg::F(l1_s)),
                    ("l0_s", Arg::F(l0_s)),
                    ("net_s", Arg::F(net_s)),
                    ("drain_s", Arg::F(drain_s)),
                    ("e2e_s", Arg::F(e2e_s)),
                ]);
            }
        }
    }

    w.finish(dakc_meta)
}

/// An argument value in a trace event's `args` object.
enum Arg {
    U(u64),
    F(f64),
    B(bool),
    /// A literal string value (JSON-escaped on write).
    S(&'static str),
}

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Self {
        Self {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push_str(",\n");
        }
    }

    fn args(&mut self, args: &[(&str, Arg)]) {
        self.out.push_str("\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push('"');
            self.out.push_str(&escape(k));
            self.out.push_str("\":");
            match v {
                Arg::U(n) => self.out.push_str(&n.to_string()),
                Arg::F(f) => self.out.push_str(&fmt_num(*f)),
                Arg::B(b) => self.out.push_str(if *b { "true" } else { "false" }),
                Arg::S(s) => {
                    self.out.push('"');
                    self.out.push_str(&escape(s));
                    self.out.push('"');
                }
            }
        }
        self.out.push('}');
    }

    fn meta(&mut self, what: &str, pid: u32, tid: u32, name: &str) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            escape(what),
            escape(name)
        ));
    }

    fn instant(&mut self, e: &Event, pid: u32, ts: f64, args: &[(&str, Arg)]) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{},\"ts\":{},",
            escape(e.kind.name()),
            e.pe,
            fmt_num(ts)
        ));
        self.args(args);
        self.out.push('}');
    }

    fn slice(&mut self, ph: char, name: &str, pid: u32, tid: u32, ts: f64, args: &[(&str, Arg)]) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},",
            escape(name),
            fmt_num(ts)
        ));
        self.args(args);
        self.out.push('}');
    }

    /// Flow events: `ph:"s"` starts an arrow, `ph:"f"` (with binding point
    /// `"e"`, i.e. bind to the enclosing instant) ends it. Perfetto draws
    /// an arrow between the two events sharing `cat` + `id`.
    fn flow(&mut self, ph: char, id: u64, pid: u32, tid: u32, ts: f64, args: &[(&str, Arg)]) {
        self.sep();
        let bp = if ph == 'f' { ",\"bp\":\"e\"" } else { "" };
        self.out.push_str(&format!(
            "{{\"name\":\"msgflow\",\"cat\":\"flow\",\"ph\":\"{ph}\",\"id\":{id}{bp},\"pid\":{pid},\"tid\":{tid},\"ts\":{},",
            fmt_num(ts)
        ));
        self.args(args);
        self.out.push('}');
    }

    fn counter(&mut self, name: &str, pid: u32, tid: u32, ts: f64, args: &[(&str, Arg)]) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},",
            escape(name),
            fmt_num(ts)
        ));
        self.args(args);
        self.out.push('}');
    }

    fn finish(mut self, dakc_meta: Option<&str>) -> String {
        self.out.push_str("\n]");
        if let Some(meta) = dakc_meta {
            self.out.push_str(",\"dakc\":");
            self.out.push_str(meta);
        }
        self.out.push_str("}\n");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::json::parse;
    use proptest::prelude::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event { ts: 0.0, pe: 0, kind: EventKind::Phase { phase: 0 } },
            Event {
                ts: 1e-6,
                pe: 0,
                kind: EventKind::MsgSend { dst: 1, tag: 7, bytes: 128 },
            },
            Event {
                ts: 2e-6,
                pe: 1,
                kind: EventKind::MsgDeliver { src: 0, tag: 7, bytes: 128 },
            },
            Event { ts: 3e-6, pe: 1, kind: EventKind::BarrierEnter },
            Event {
                ts: 4e-6,
                pe: 1,
                kind: EventKind::BarrierExit { waited_s: 1e-6 },
            },
            Event { ts: 4e-6, pe: 0, kind: EventKind::QueueDepth { depth: 3 } },
            Event {
                ts: 5e-6,
                pe: 0,
                kind: EventKind::NodeMem { node: 0, bytes: 4096 },
            },
        ]
    }

    #[test]
    fn trace_is_valid_json_with_expected_tracks() {
        let trace = chrome_trace(&sample_events(), 2);
        let doc = parse(&trace).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("array");

        // Metadata names for the node process and both PE threads.
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 3, "1 process + 2 thread name records");

        // Barrier B/E pair is balanced on the same track.
        let b = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"))
            .expect("barrier begin");
        let end = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("E"))
            .expect("barrier end");
        assert_eq!(b.get("tid"), end.get("tid"));
        assert!(
            b.get("ts").and_then(|t| t.as_f64()) <= end.get("ts").and_then(|t| t.as_f64())
        );

        // Counter tracks exist for queue depth and node memory.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("C")
                && e.get("name").and_then(|n| n.as_str()) == Some("queue_depth/pe0")
        }));
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("C")
                && e.get("name").and_then(|n| n.as_str()) == Some("node_mem")
        }));
    }

    #[test]
    fn flow_events_pair_by_id_with_binding_point() {
        let events = vec![
            Event {
                ts: 1e-6,
                pe: 0,
                kind: EventKind::FlowSend { flow: 42, channel: 0, dst: 3 },
            },
            Event {
                ts: 9e-6,
                pe: 3,
                kind: EventKind::FlowRecv {
                    flow: 42,
                    channel: 0,
                    src: 0,
                    l3_s: 1e-6,
                    l2_s: 2e-6,
                    l1_s: 0.0,
                    l0_s: 3e-6,
                    net_s: 1e-6,
                    drain_s: 1e-6,
                    e2e_s: 8e-6,
                },
            },
        ];
        let doc = parse(&chrome_trace(&events, 2)).expect("valid JSON");
        let rows = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("array");
        let s = rows
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("s"))
            .expect("flow start");
        let f = rows
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("f"))
            .expect("flow finish");
        assert_eq!(s.get("id"), f.get("id"));
        assert_eq!(s.get("cat").and_then(|c| c.as_str()), Some("flow"));
        assert_eq!(f.get("bp").and_then(|c| c.as_str()), Some("e"));
        // Start on the sender's track, finish on the receiver's.
        assert_eq!(s.get("tid").and_then(|t| t.as_f64()), Some(0.0));
        assert_eq!(f.get("tid").and_then(|t| t.as_f64()), Some(3.0));
    }

    #[test]
    fn export_is_deterministic() {
        let ev = sample_events();
        assert_eq!(chrome_trace(&ev, 2), chrome_trace(&ev, 2));
    }

    #[test]
    fn names_and_string_args_are_json_escaped() {
        // No current event kind carries a user string, but the writer must
        // not depend on that: a name with quotes, backslashes or control
        // characters still yields a parseable document.
        let mut w = Writer::new();
        w.meta("process_name", 0, 0, "evil \"node\"\\\n");
        w.slice('B', "a \"slice\"", 0, 0, 0.0, &[("s", Arg::S("tab\there"))]);
        w.counter("c\\d", 0, 0, 1.0, &[("v", Arg::U(1))]);
        let doc = parse(&w.finish(None)).expect("escaped output parses");
        let rows = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(
            rows[0].get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()),
            Some("evil \"node\"\\\n")
        );
        assert_eq!(rows[1].get("name").and_then(|n| n.as_str()), Some("a \"slice\""));
        assert_eq!(
            rows[1].get("args").and_then(|a| a.get("s")).and_then(|s| s.as_str()),
            Some("tab\there")
        );
        assert_eq!(rows[2].get("name").and_then(|n| n.as_str()), Some("c\\d"));
    }

    #[test]
    fn dakc_meta_is_embedded_as_top_level_key() {
        let trace = chrome_trace_with(&sample_events(), 2, Some("{\"ranks\":3}"));
        let doc = parse(&trace).expect("valid JSON");
        assert_eq!(
            doc.get("dakc").and_then(|d| d.get("ranks")).and_then(|r| r.as_f64()),
            Some(3.0)
        );
        assert!(doc.get("traceEvents").is_some());
        // Without meta the key is absent entirely.
        assert!(parse(&chrome_trace(&sample_events(), 2)).unwrap().get("dakc").is_none());
    }

    /// Builds one event of any kind from fuzz inputs, covering every
    /// `EventKind` variant (selector modulo the variant count).
    fn fuzz_event(sel: u8, a: u32, b: u64, f: f64) -> Event {
        let pe = a % 7;
        let kind = match sel % 18 {
            0 => EventKind::MsgSend { dst: a % 5, tag: a, bytes: b as u32 },
            1 => EventKind::MsgDeliver { src: a % 5, tag: a, bytes: b as u32 },
            2 => EventKind::PutFlush { hop: a % 5, bytes: b as u32, fill_pct: (a % 101) as u8 },
            3 => EventKind::L1Drain { packets: b as u32 },
            4 => EventKind::L2Ship {
                dst: a % 5,
                records: b as u32,
                fill_pct: (a % 101) as u8,
                heavy: b.is_multiple_of(2),
            },
            5 => EventKind::L3Flush { occupancy: b as u32, cap: (b as u32).wrapping_add(1) },
            6 => EventKind::BarrierEnter,
            7 => EventKind::BarrierExit { waited_s: f },
            8 => EventKind::Phase { phase: a },
            9 => EventKind::MemAlloc { bytes: b, now: b },
            10 => EventKind::MemFree { bytes: b, now: b },
            11 => EventKind::Oom { bytes: b },
            12 => EventKind::QueueDepth { depth: b as u32 },
            13 => EventKind::NodeMem { node: a % 4, bytes: b },
            14 => EventKind::NetRetry { dst: a % 5, attempt: a, delay_us: b },
            15 => EventKind::NetFault { kind: (b % 9) as u8 },
            16 => EventKind::FlowSend { flow: b, channel: (a % 3) as u8, dst: a % 5 },
            _ => EventKind::FlowRecv {
                flow: b,
                channel: (a % 3) as u8,
                src: a % 5,
                l3_s: f,
                l2_s: f * 0.5,
                l1_s: 0.0,
                l0_s: f * 0.25,
                net_s: f * 2.0,
                drain_s: f * 0.125,
                e2e_s: f * 3.875,
            },
        };
        Event { ts: f.abs(), pe, kind }
    }

    proptest! {
        // Satellite invariant: every generated trace is valid JSON — any
        // event mix, any `f64` magnitude, every variant incl. string args.
        #[test]
        fn generated_traces_parse_as_json(
            raw in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u64>(), any::<u64>()), 1..60),
            ppn in 1usize..5,
        ) {
            let events: Vec<Event> = raw
                .iter()
                .map(|&(sel, a, b, fbits)| {
                    // Map arbitrary bits onto a finite f64 spanning many
                    // magnitudes (1e-12 .. 1e6 seconds).
                    let f = (fbits % 1_000_000_000_000_000_000) as f64 * 1e-12;
                    fuzz_event(sel, a, b, f)
                })
                .collect();
            let trace = chrome_trace(&events, ppn);
            let doc = parse(&trace).expect("generated trace parses");
            let rows = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("array");
            prop_assert!(rows.len() >= events.len(), "metadata + one row per event");
        }
    }
}
