//! Flight-recorder telemetry: event tracing, metrics, JSON export.
//!
//! Three pillars (all dependency-free):
//!
//! * [`TraceSink`] + [`Event`] — an optionally-enabled ring-buffered
//!   event trace recorded at virtual timestamps inside the simulator (and
//!   at wall-clock timestamps by the threaded engine). Disabled tracing is
//!   a single enum-discriminant branch per hook: the event-constructing
//!   closure is never called.
//! * [`MetricsRegistry`] — named counters and fixed-bucket histograms
//!   (packet fill ratios, batch occupancy, payload sizes, barrier waits,
//!   hop counts) attached to every [`crate::SimReport`].
//! * [`chrome`] / [`json`] — a hand-rolled Chrome trace-event JSON writer
//!   (viewable in Perfetto or `chrome://tracing`) and a tiny JSON reader
//!   used by tests and artifact validation.
//!
//! Everything here is deterministic: identical runs produce byte-identical
//! traces and metrics JSON, preserving the simulator's core invariant.

pub mod chrome;
pub mod codec;
pub mod event;
pub mod flow;
pub mod json;
pub mod metrics;
pub mod reader;
pub mod ring;

pub use chrome::{chrome_trace, chrome_trace_with};
pub use codec::{decode_events, encode_events};
pub use event::{Event, EventKind};
pub use flow::{FlowSampler, FlowTag};
pub use json::JsonValue;
pub use metrics::{Histogram, MetricsRegistry};
pub use reader::{read_chrome_trace, ParsedTrace};
pub use ring::TraceSink;
