//! The flight recorder: an optionally-enabled ring buffer of events.
//!
//! [`TraceSink::Off`] makes every hook a single discriminant test — the
//! event-constructing closure passed to [`TraceSink::record`] is never
//! invoked, so disabled tracing costs nothing measurable (verified by the
//! `telemetry` Criterion bench in `dakc-bench`). [`TraceSink::Ring`]
//! keeps the most recent `capacity` events, counting what it evicted, the
//! way a hardware flight recorder keeps the last minutes before an
//! incident.

use super::event::{Event, EventKind};

/// Default ring capacity: enough for every event of a bench-scale sim run
/// while bounding memory for production-scale ones.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

/// Where trace events go.
#[derive(Debug, Clone)]
pub enum TraceSink {
    /// Tracing disabled; hooks are no-ops.
    Off,
    /// Record into a bounded ring.
    Ring(FlightRecorder),
}

impl TraceSink {
    /// An enabled sink keeping the most recent `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        TraceSink::Ring(FlightRecorder::new(capacity))
    }

    /// An enabled sink with [`DEFAULT_RING_CAPACITY`].
    pub fn ring_default() -> Self {
        Self::ring(DEFAULT_RING_CAPACITY)
    }

    /// `true` when events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(self, TraceSink::Ring(_))
    }

    /// Records an event. `make` is only called when the sink is enabled, so
    /// argument construction is free when tracing is off.
    #[inline]
    pub fn record(&mut self, ts: f64, pe: u32, make: impl FnOnce() -> EventKind) {
        if let TraceSink::Ring(r) = self {
            r.push(Event { ts, pe, kind: make() });
        }
    }

    /// The recorded events in chronological (recording) order. Empty when
    /// the sink is off.
    pub fn events(&self) -> Vec<Event> {
        match self {
            TraceSink::Off => Vec::new(),
            TraceSink::Ring(r) => r.in_order(),
        }
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        match self {
            TraceSink::Off => 0,
            TraceSink::Ring(r) => r.dropped,
        }
    }
}

/// Fixed-capacity overwrite-oldest event buffer.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<Event>,
    capacity: usize,
    /// Index the next event will be written at once the ring has wrapped.
    head: usize,
    /// Events evicted so far.
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            buf: Vec::new(),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    #[inline]
    fn push(&mut self, e: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events oldest-first.
    fn in_order(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_sink_never_calls_closure() {
        let mut sink = TraceSink::Off;
        sink.record(0.0, 0, || panic!("must not be constructed"));
        assert!(sink.events().is_empty());
        assert!(!sink.enabled());
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut sink = TraceSink::ring(3);
        for i in 0..5u32 {
            sink.record(i as f64, 0, || EventKind::Phase { phase: i });
        }
        let ev = sink.events();
        assert_eq!(ev.len(), 3);
        let phases: Vec<u32> = ev
            .iter()
            .map(|e| match e.kind {
                EventKind::Phase { phase } => phase,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(phases, vec![2, 3, 4]);
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn unwrapped_ring_is_chronological() {
        let mut sink = TraceSink::ring(10);
        for i in 0..4u32 {
            sink.record(i as f64, i, || EventKind::BarrierEnter);
        }
        let ev = sink.events();
        assert_eq!(ev.len(), 4);
        assert!(ev.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert_eq!(sink.dropped(), 0);
    }
}
