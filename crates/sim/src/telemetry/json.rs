//! A tiny JSON escape helper and recursive-descent reader.
//!
//! The workspace builds with no external dependencies, so the telemetry
//! exporters hand-write their JSON; this module holds the one shared
//! writer primitive (string escaping) and a small strict parser used by
//! tests and by `dakc-bench`'s artifact schema validation. The parser
//! handles the full JSON grammar the exporters emit: objects, arrays,
//! strings with escapes, numbers, booleans, null.

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member by key (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Array element by index.
    pub fn idx(&self, i: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), at: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.at));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.at,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.at)),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(JsonValue::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.at,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.at,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (may span multiple bytes).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().expect("peeked nonempty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let json = format!("\"{}\"", escape(s));
        assert_eq!(parse(&json).unwrap(), JsonValue::Str(s.to_string()));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, -2.5, 3e2], "b": {"c": true, "d": null}, "e": "x"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(|a| a.idx(2)).and_then(|n| n.as_f64()), Some(300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e").and_then(|e| e.as_str()), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
    }
}
