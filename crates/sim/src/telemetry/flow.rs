//! Causal flow tags: follow one sampled L2 packet through the cascade.
//!
//! The flight recorder's point events say *that* a PUT happened; a flow
//! tag says *how long the k-mers inside it waited at every layer*. When a
//! packet buffer opens at L2 (and the sampling counter selects it), the
//! aggregation layer mints a [`FlowTag`] carrying the flow id and the
//! timestamps of each hand-off. The tag rides *out of band* — in a message
//! sidecar, never in wire payloads — so tracing cannot perturb simulated
//! time, and a disabled sampler costs one `Option` check per packet open.
//!
//! Stages (virtual seconds in the simulator, wall seconds threaded):
//!
//! ```text
//!  t_open      first k-mer enters the L3 batch (or L2 packet when no L3)
//!  t_l2_open   first k-mer enters the L2 packet buffer
//!  t_l2_ship   packet handed to the L1 actor stage
//!  t_l1_drain  actor drained the packet into the L0 conveyor
//!  t_l0_put    L0 buffer flushed onto the wire
//!  (arrival)   message delivered at the destination PE
//!  (close)     records accumulated into the owner's table
//! ```
//!
//! Consecutive differences are the per-stage residencies reported by
//! [`crate::telemetry::event::EventKind::FlowRecv`]; they telescope, so
//! they always sum to the end-to-end latency. For multi-record packets the
//! residency is measured from the *first* record's entry (a documented
//! first-entry approximation), and on multi-hop routes `t_l0_put` is
//! re-stamped at each relay hop so the in-flight stage covers the final
//! hop only — earlier hops show up in the drain stage of the relay.

/// Out-of-band causal tag for one sampled L2 packet.
///
/// Small `Copy` POD: carrying one is a few moves, and the sidecar vectors
/// holding them stay empty unless sampling is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowTag {
    /// Globally unique flow id: `(source PE) << 40 | per-PE sequence`.
    pub flow: u64,
    /// Application channel the packet shipped on (NORMAL/HEAVY/SINGLE).
    pub channel: u8,
    /// PE that opened the flow.
    pub src: u32,
    /// First k-mer entered the L3 batch (equals `t_l2_open` when the L3
    /// layer is disabled, making the L3 stage zero-width).
    pub t_open: f64,
    /// First k-mer entered the L2 packet buffer.
    pub t_l2_open: f64,
    /// Packet shipped from L2 into the L1 actor stage.
    pub t_l2_ship: f64,
    /// Actor drained the packet into the L0 conveyor.
    pub t_l1_drain: f64,
    /// L0 buffer flushed onto the wire (re-stamped per relay hop).
    pub t_l0_put: f64,
}

impl FlowTag {
    /// Builds the globally unique flow id for `seq`-th flow opened by `pe`.
    pub fn id(pe: u32, seq: u64) -> u64 {
        ((pe as u64) << 40) | (seq & ((1 << 40) - 1))
    }

    /// Opens a flow: later stage timestamps default to the open time so a
    /// tag that skips a layer (e.g. no L3) reports zero residency there.
    pub fn open(flow: u64, channel: u8, src: u32, t_open: f64, t_l2_open: f64) -> Self {
        Self {
            flow,
            channel,
            src,
            t_open,
            t_l2_open,
            t_l2_ship: t_l2_open,
            t_l1_drain: t_l2_open,
            t_l0_put: t_l2_open,
        }
    }
}

/// Deterministic 1-in-N sampler minting [`FlowTag`] ids.
///
/// `None` rate disables sampling entirely (the hot path sees a single
/// `is_none` branch); `Some(1)` tags every packet. Sampling is counted per
/// PE over packet-buffer opens, so identical runs select identical flows.
#[derive(Debug, Clone)]
pub struct FlowSampler {
    pe: u32,
    rate: Option<u32>,
    opens: u64,
    minted: u64,
}

impl FlowSampler {
    /// A sampler for `pe` tagging one in `rate` packet opens.
    pub fn new(pe: u32, rate: Option<u32>) -> Self {
        Self { pe, rate, opens: 0, minted: 0 }
    }

    /// `true` when sampling is enabled at any rate.
    pub fn enabled(&self) -> bool {
        self.rate.is_some()
    }

    /// Counts a packet-buffer open; returns a fresh flow id when this open
    /// is sampled.
    pub fn sample(&mut self) -> Option<u64> {
        let rate = self.rate?.max(1);
        let hit = self.opens.is_multiple_of(rate as u64);
        self.opens += 1;
        if hit {
            let id = FlowTag::id(self.pe, self.minted);
            self.minted += 1;
            Some(id)
        } else {
            None
        }
    }

    /// Flows minted so far.
    pub fn minted(&self) -> u64 {
        self.minted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sampler_never_mints() {
        let mut s = FlowSampler::new(3, None);
        assert!(!s.enabled());
        for _ in 0..100 {
            assert_eq!(s.sample(), None);
        }
        assert_eq!(s.minted(), 0);
    }

    #[test]
    fn full_rate_tags_every_open_with_unique_ids() {
        let mut s = FlowSampler::new(2, Some(1));
        let ids: Vec<u64> = (0..5).map(|_| s.sample().unwrap()).collect();
        assert_eq!(ids, vec![
            FlowTag::id(2, 0),
            FlowTag::id(2, 1),
            FlowTag::id(2, 2),
            FlowTag::id(2, 3),
            FlowTag::id(2, 4),
        ]);
        // Distinct PEs never collide.
        assert_ne!(FlowTag::id(2, 0), FlowTag::id(3, 0));
    }

    #[test]
    fn one_in_n_sampling_is_periodic() {
        let mut s = FlowSampler::new(0, Some(4));
        let hits: Vec<bool> = (0..12).map(|_| s.sample().is_some()).collect();
        assert_eq!(hits, vec![
            true, false, false, false, true, false, false, false, true, false, false, false
        ]);
        assert_eq!(s.minted(), 3);
    }

    #[test]
    fn open_defaults_later_stages_to_l2_open() {
        let t = FlowTag::open(7, 1, 4, 0.5, 1.0);
        assert_eq!(t.t_open, 0.5);
        assert_eq!(t.t_l2_open, 1.0);
        assert_eq!(t.t_l2_ship, 1.0);
        assert_eq!(t.t_l1_drain, 1.0);
        assert_eq!(t.t_l0_put, 1.0);
    }
}
