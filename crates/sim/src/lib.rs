//! # dakc-sim — a deterministic virtual-time distributed-machine simulator
//!
//! The paper evaluates DAKC on the Phoenix cluster (256 Intel nodes, 24
//! cores each, InfiniBand 100HDR, OpenSHMEM one-sided communication). This
//! crate is the substitute substrate: a **conservative discrete-event
//! simulator** in which every processing element (PE) runs the *real*
//! algorithm on *real* data — real k-mers, real buffers, real routing — and
//! only *time* is virtual.
//!
//! Each PE owns a virtual clock. Executing work charges the clock through a
//! machine cost model ([`MachineConfig`], parameterized with the paper's
//! Table IV constants); sending a message computes an arrival time at the
//! destination from link bandwidth and latency; a PE with nothing to do
//! sleeps until its next message arrives — which is precisely the "CPU
//! cycle waste" from skew and synchronization that the paper's FA-BSP
//! design attacks. Synchronization counts, communication volumes and load
//! imbalance are therefore *measured from execution*, not assumed; the cost
//! constants only convert them into seconds.
//!
//! The scheduler is single-threaded and fully deterministic: PEs are
//! stepped in virtual-time order with PE-id tie-breaking, so every run with
//! the same inputs produces bit-identical results (a property the
//! cross-engine integration tests rely on).
//!
//! Components:
//!
//! * [`machine`] — node/PE topology and cost constants (Table IV presets).
//! * [`sched`] — the virtual-time scheduler, [`Program`] trait and PE
//!   context API ([`Ctx`]).
//! * [`msg`] — typed in-flight messages with arrival times.
//! * [`stats`] — per-PE and aggregate accounting: compute / intranode /
//!   internode / idle seconds (Fig 5), bytes, messages, barrier waits.
//! * [`memory`] — per-node memory budgets with OOM detection (Fig 8).
//! * [`cache`] — a set-associative cache simulator standing in for PAPI
//!   hardware counters (Fig 3).
//! * [`telemetry`] — flight-recorder event tracing at virtual timestamps,
//!   a metrics registry of counters and fixed-bucket histograms, and a
//!   Chrome trace-event JSON exporter (Perfetto-viewable).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod machine;
pub mod memory;
pub mod msg;
pub mod sched;
pub mod stats;
pub mod telemetry;
pub mod trace;

pub use cache::CacheSim;
pub use machine::{MachineConfig, PeId};
pub use msg::Msg;
pub use sched::{Ctx, Program, SimError, Simulator, Step};
pub use stats::{Category, PeStats, SimReport};
pub use telemetry::{chrome_trace, Event, EventKind, FlowSampler, FlowTag, MetricsRegistry, TraceSink};
pub use trace::Timeline;
