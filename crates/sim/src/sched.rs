//! The conservative virtual-time scheduler.
//!
//! Programs are stepped in virtual-time order (minimum clock first, PE id
//! breaking ties), so execution is sequential, deterministic and — because
//! a PE is only advanced when it holds the minimum clock among runnable
//! PEs — causally consistent: no PE ever observes a message sent "in its
//! past".
//!
//! ## Execution model
//!
//! A [`Program`] is a resumable state machine. Each call to
//! [`Program::step`] performs a bounded amount of work (parse a batch of
//! reads, drain a receive buffer, run a sort) and reports what it needs
//! next:
//!
//! * [`Step::Yield`] — more work is immediately available.
//! * [`Step::Sleep`] — blocked until a message arrives (a BSP PE waiting
//!   on a collective). The idle time this accrues is exactly the
//!   synchronization waste the paper's Fig 5/§III analysis discusses.
//! * [`Step::Barrier`] — enter the global barrier. The barrier is
//!   *quiescent*: it completes only when every live PE is in it **and** no
//!   message is undelivered or unprocessed, which is the termination
//!   condition the Conveyors runtime provides for the paper's
//!   `GLOBAL BARRIER`. PEs inside the barrier are woken to process late
//!   arrivals, exactly like a conveyor progress loop.
//! * [`Step::Done`] — the program finished.
//!
//! Time is charged explicitly through the [`Ctx`] API; sending charges the
//! sender NIC occupancy (remote) or memory-copy time (colocated — the
//! paper's §VI-B memcpy conversion) and schedules delivery at
//! `send completion + τ` for remote messages.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::machine::{MachineConfig, PeId};
use crate::memory::{MemoryTracker, OomError};
use crate::msg::{ArrivalKey, Msg};
use crate::stats::{Category, PeStats, SimReport};
use crate::telemetry::{metrics as mbounds, EventKind, MetricsRegistry, TraceSink};

/// What a program wants after a step. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// More work is immediately available.
    Yield,
    /// Blocked until a message arrives.
    Sleep,
    /// Enter the global quiescent barrier.
    Barrier,
    /// Finished.
    Done,
}

/// A resumable per-PE program. See the module docs for the contract.
pub trait Program {
    /// Performs a bounded amount of work and reports the PE's next need.
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step;
}

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A node exceeded its memory budget (Fig 8's failure mode).
    Oom(OomError),
    /// No PE can make progress: some are asleep with no message ever
    /// coming. Always a bug in the program under simulation.
    Deadlock {
        /// PEs stuck sleeping.
        sleeping: Vec<PeId>,
        /// PEs waiting in the barrier.
        in_barrier: Vec<PeId>,
    },
    /// A message was sent to a PE that already finished.
    MessageToFinishedPe {
        /// Sender.
        src: PeId,
        /// Finished destination.
        dst: PeId,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Oom(e) => write!(
                f,
                "node {} out of memory: {} B live exceeds {} B budget",
                e.node, e.attempted, e.budget
            ),
            SimError::Deadlock { sleeping, in_barrier } => write!(
                f,
                "deadlock: {} sleeping PEs, {} in barrier, no messages in flight",
                sleeping.len(),
                in_barrier.len()
            ),
            SimError::MessageToFinishedPe { src, dst } => {
                write!(f, "PE {src} sent a message to finished PE {dst}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeState {
    Runnable,
    Sleeping,
    InBarrier,
    Done,
}

#[derive(Debug)]
struct InboxEntry(Msg);

impl PartialEq for InboxEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for InboxEntry {}
impl PartialOrd for InboxEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InboxEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}
impl InboxEntry {
    fn key(&self) -> ArrivalKey {
        ArrivalKey {
            arrival: self.0.arrival,
            seq: self.0.seq,
        }
    }
}

#[derive(Debug, Default)]
struct Inbox {
    heap: BinaryHeap<Reverse<InboxEntry>>,
}

impl Inbox {
    fn push(&mut self, m: Msg) {
        self.heap.push(Reverse(InboxEntry(m)));
    }

    fn next_arrival(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.0 .0.arrival)
    }

    fn pop_ready(&mut self, now: f64) -> Option<Msg> {
        if self.next_arrival()? <= now {
            Some(self.heap.pop().expect("peeked").0 .0)
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// The per-step API a [`Program`] uses to interact with the machine.
pub struct Ctx<'a> {
    pe: PeId,
    machine: &'a MachineConfig,
    clock: &'a mut f64,
    stats: &'a mut PeStats,
    inbox: &'a mut Inbox,
    staged: &'a mut Vec<Msg>,
    seq: &'a mut u64,
    mem: &'a mut MemoryTracker,
    oom: &'a mut Option<OomError>,
    delivered: &'a mut u64,
    phase_entry: &'a mut Vec<f64>,
    trace: &'a mut TraceSink,
    metrics: &'a mut MetricsRegistry,
}

impl Ctx<'_> {
    /// This PE's id.
    #[inline]
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// Total PEs in the machine.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.machine.num_pes()
    }

    /// The machine description (cost constants, topology).
    #[inline]
    pub fn machine(&self) -> &MachineConfig {
        self.machine
    }

    /// Current virtual time on this PE, seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        *self.clock
    }

    /// Records a flight-recorder event at this PE's current virtual time.
    /// `make` is only invoked when tracing is enabled, so an instrumented
    /// hot path pays one enum-discriminant branch when it is off.
    #[inline]
    pub fn trace(&mut self, make: impl FnOnce() -> EventKind) {
        self.trace.record(*self.clock, self.pe as u32, make);
    }

    /// The run-wide metrics registry. Counters and histograms recorded
    /// here end up on [`crate::SimReport::metrics`].
    #[inline]
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        self.metrics
    }

    /// Charges `ops` 64-bit integer operations of compute time.
    pub fn charge_ops(&mut self, ops: u64) {
        let t = self.machine.ops_time(ops);
        *self.clock += t;
        self.stats.ops += ops;
        self.stats.charge(Category::Compute, t);
    }

    /// Charges streaming main-memory traffic of `bytes` (intranode).
    pub fn charge_mem(&mut self, bytes: u64) {
        let t = self.machine.mem_time(bytes);
        *self.clock += t;
        self.stats.charge(Category::Intranode, t);
    }

    /// Charges `lines` cache-line transfers (random-access traffic).
    pub fn charge_cache_lines(&mut self, lines: u64) {
        self.charge_mem(lines * self.machine.line_bytes as u64);
    }

    /// Sends `payload` to `dst` on channel `tag`.
    ///
    /// Remote destination: the sender pays NIC injection time and the
    /// message lands at `now + τ`. Colocated destination: the sender pays
    /// a memory copy and the message is visible immediately (the runtime's
    /// memcpy conversion, paper §VI-B).
    pub fn send(&mut self, dst: PeId, tag: u32, payload: Vec<u8>) {
        self.send_with_flows(dst, tag, payload, Vec::new());
    }

    /// Like [`Ctx::send`], but attaches out-of-band causal flow tags
    /// (record-ordinal keyed) to the message. The tags ride in the [`Msg`]
    /// sidecar — they are not payload bytes, so the charged time is
    /// identical to an untagged send.
    pub fn send_with_flows(
        &mut self,
        dst: PeId,
        tag: u32,
        payload: Vec<u8>,
        flows: Vec<(u32, crate::telemetry::FlowTag)>,
    ) {
        let bytes = payload.len() as u64;
        let arrival = if self.machine.colocated(self.pe, dst) {
            let t = self.machine.mem_time(bytes);
            *self.clock += t;
            self.stats.charge(Category::Intranode, t);
            self.stats.msgs_sent_local += 1;
            self.stats.bytes_sent_local += bytes;
            *self.clock
        } else {
            let t = self.machine.link_time(bytes);
            *self.clock += t;
            self.stats.charge(Category::Internode, t);
            self.stats.msgs_sent_remote += 1;
            self.stats.bytes_sent_remote += bytes;
            *self.clock + self.machine.latency
        };
        let seq = *self.seq;
        *self.seq += 1;
        self.metrics
            .observe("msg.payload_bytes", mbounds::BYTES_BOUNDS, bytes as f64);
        self.trace.record(*self.clock, self.pe as u32, || EventKind::MsgSend {
            dst: dst as u32,
            tag,
            bytes: bytes as u32,
        });
        self.staged.push(Msg {
            src: self.pe,
            dst,
            tag,
            payload,
            arrival,
            seq,
            flows,
        });
    }

    /// Delivers every message that has arrived by `now`, in arrival order.
    pub fn poll(&mut self) -> Vec<Msg> {
        let mut out = Vec::new();
        while let Some(m) = self.inbox.pop_ready(*self.clock) {
            self.stats.msgs_received += 1;
            self.stats.bytes_received += m.len() as u64;
            *self.delivered += 1;
            self.trace.record(*self.clock, self.pe as u32, || EventKind::MsgDeliver {
                src: m.src as u32,
                tag: m.tag,
                bytes: m.len() as u32,
            });
            out.push(m);
        }
        if !out.is_empty() {
            let depth = self.inbox.len() as u32;
            self.trace
                .record(*self.clock, self.pe as u32, || EventKind::QueueDepth { depth });
        }
        out
    }

    /// `true` if a message is deliverable right now.
    pub fn has_ready(&self) -> bool {
        self.inbox.next_arrival().is_some_and(|a| a <= *self.clock)
    }

    /// Arrival time of the earliest pending message, if any (possibly in
    /// the future).
    pub fn next_arrival(&self) -> Option<f64> {
        self.inbox.next_arrival()
    }

    /// Declares `bytes` of allocation; may trip the node budget (the
    /// simulation then aborts with [`SimError::Oom`] after this step).
    pub fn mem_alloc(&mut self, bytes: u64) {
        self.stats.mem_now += bytes;
        self.stats.mem_peak = self.stats.mem_peak.max(self.stats.mem_now);
        let node = self.machine.node_of(self.pe);
        let now = self.stats.mem_now;
        self.trace
            .record(*self.clock, self.pe as u32, || EventKind::MemAlloc { bytes, now });
        if let Err(e) = self.mem.alloc(node, bytes) {
            self.trace
                .record(*self.clock, self.pe as u32, || EventKind::Oom { bytes });
            if self.oom.is_none() {
                *self.oom = Some(e);
            }
        }
        let live = self.mem.live(node);
        self.trace.record(*self.clock, self.pe as u32, || EventKind::NodeMem {
            node: node as u32,
            bytes: live,
        });
    }

    /// Releases `bytes` of allocation.
    pub fn mem_free(&mut self, bytes: u64) {
        self.stats.mem_now = self.stats.mem_now.saturating_sub(bytes);
        let node = self.machine.node_of(self.pe);
        self.mem.free(node, bytes);
        let now = self.stats.mem_now;
        self.trace
            .record(*self.clock, self.pe as u32, || EventKind::MemFree { bytes, now });
        let live = self.mem.live(node);
        self.trace.record(*self.clock, self.pe as u32, || EventKind::NodeMem {
            node: node as u32,
            bytes: live,
        });
    }

    /// Marks entry into `phase` (0-based). Used for the per-phase makespan
    /// decomposition (Fig 4). Every PE should mark the same phases.
    pub fn set_phase(&mut self, phase: usize) {
        if self.phase_entry.len() <= phase {
            self.phase_entry.resize(phase + 1, 0.0);
        }
        self.phase_entry[phase] = self.phase_entry[phase].max(*self.clock);
        self.trace.record(*self.clock, self.pe as u32, || EventKind::Phase {
            phase: phase as u32,
        });
    }
}

/// The simulator: owns the machine description and runs programs to
/// completion.
pub struct Simulator {
    machine: MachineConfig,
}

impl Simulator {
    /// Creates a simulator for `machine`.
    pub fn new(machine: MachineConfig) -> Self {
        Self { machine }
    }

    /// The machine this simulator models.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Runs one program per PE to completion and reports accounting.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the machine's PE count.
    pub fn run(&self, programs: Vec<Box<dyn Program>>) -> Result<SimReport, SimError> {
        self.run_traced(programs, &mut TraceSink::Off)
    }

    /// Like [`Simulator::run`], but records flight-recorder events into
    /// `trace`. Pass [`TraceSink::Off`] (what [`Simulator::run`] does) for
    /// zero-overhead untraced execution, or a [`TraceSink::ring`] to keep
    /// the most recent events for Chrome-trace export. The simulator itself
    /// records message sends/deliveries, memory traffic, phase transitions
    /// and barrier enter/exit pairs; programs add cascade-level events
    /// through [`Ctx::trace`].
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the machine's PE count.
    pub fn run_traced(
        &self,
        programs: Vec<Box<dyn Program>>,
        trace: &mut TraceSink,
    ) -> Result<SimReport, SimError> {
        let p = self.machine.num_pes();
        assert_eq!(programs.len(), p, "need one program per PE");

        let mut programs: Vec<Option<Box<dyn Program>>> = programs.into_iter().map(Some).collect();
        let mut clocks = vec![0.0f64; p];
        let mut states = vec![PeState::Runnable; p];
        let mut gens = vec![0u64; p];
        let mut stats = vec![PeStats::default(); p];
        let mut inboxes: Vec<Inbox> = (0..p).map(|_| Inbox::default()).collect();
        let mut mem = MemoryTracker::new(&self.machine);
        let mut phase_entry: Vec<f64> = Vec::new();
        let mut seq = 0u64;
        let mut sent = 0u64;
        let mut delivered = 0u64;
        let mut barriers_completed = 0u64;
        let mut barrier_entry = vec![0.0f64; p];
        let mut metrics = MetricsRegistry::new();

        // Runnable heap of (clock, pe, generation); stale entries skipped.
        let mut heap: BinaryHeap<Reverse<(ArrivalKey, PeId, u64)>> = BinaryHeap::new();
        let push = |heap: &mut BinaryHeap<Reverse<(ArrivalKey, PeId, u64)>>,
                    clock: f64,
                    pe: PeId,
                    gen: u64| {
            heap.push(Reverse((ArrivalKey { arrival: clock, seq: pe as u64 }, pe, gen)));
        };
        for pe in 0..p {
            push(&mut heap, 0.0, pe, 0);
        }

        let mut staged: Vec<Msg> = Vec::new();
        loop {
            // Find the next genuinely runnable PE.
            let next = loop {
                match heap.pop() {
                    Some(Reverse((key, pe, gen))) => {
                        if states[pe] == PeState::Runnable
                            && gens[pe] == gen
                            && clocks[pe] == key.arrival
                        {
                            break Some(pe);
                        }
                        // stale — skip
                    }
                    None => break None,
                }
            };

            let Some(pe) = next else {
                // No runnable PE: barrier completion, completion, or deadlock.
                let live: Vec<PeId> =
                    (0..p).filter(|&i| states[i] != PeState::Done).collect();
                if live.is_empty() {
                    break;
                }
                let all_in_barrier = live.iter().all(|&i| states[i] == PeState::InBarrier);
                if all_in_barrier && sent == delivered {
                    // Quiescence reached: release the barrier.
                    let t_max = live
                        .iter()
                        .map(|&i| clocks[i])
                        .fold(f64::NEG_INFINITY, f64::max);
                    let t_done = t_max + self.machine.barrier_time(live.len());
                    for &i in &live {
                        let wait = t_done - clocks[i];
                        let waited_s = t_done - barrier_entry[i];
                        stats[i].charge(Category::Idle, wait);
                        stats[i].barrier_wait_s += waited_s;
                        metrics.observe("barrier.wait_s", mbounds::SECONDS_BOUNDS, waited_s);
                        trace.record(t_done, i as u32, || EventKind::BarrierExit { waited_s });
                        clocks[i] = t_done;
                        states[i] = PeState::Runnable;
                        gens[i] += 1;
                        push(&mut heap, t_done, i, gens[i]);
                    }
                    barriers_completed += 1;
                    continue;
                }
                return Err(SimError::Deadlock {
                    sleeping: live
                        .iter()
                        .copied()
                        .filter(|&i| states[i] == PeState::Sleeping)
                        .collect(),
                    in_barrier: live
                        .iter()
                        .copied()
                        .filter(|&i| states[i] == PeState::InBarrier)
                        .collect(),
                });
            };

            // Step the program.
            let mut program = programs[pe].take().expect("runnable PE has a program");
            let mut oom: Option<OomError> = None;
            let step = {
                let mut ctx = Ctx {
                    pe,
                    machine: &self.machine,
                    clock: &mut clocks[pe],
                    stats: &mut stats[pe],
                    inbox: &mut inboxes[pe],
                    staged: &mut staged,
                    seq: &mut seq,
                    mem: &mut mem,
                    oom: &mut oom,
                    delivered: &mut delivered,
                    phase_entry: &mut phase_entry,
                    trace,
                    metrics: &mut metrics,
                };
                program.step(&mut ctx)
            };
            programs[pe] = Some(program);

            if let Some(e) = oom {
                return Err(SimError::Oom(e));
            }

            // Route staged messages; wake sleeping/barrier destinations.
            for m in staged.drain(..) {
                let dst = m.dst;
                if states[dst] == PeState::Done {
                    return Err(SimError::MessageToFinishedPe { src: m.src, dst });
                }
                let arrival = m.arrival;
                inboxes[dst].push(m);
                sent += 1;
                if matches!(states[dst], PeState::Sleeping | PeState::InBarrier) {
                    let wake = clocks[dst].max(arrival);
                    let idle = wake - clocks[dst];
                    stats[dst].charge(Category::Idle, idle);
                    if states[dst] == PeState::InBarrier {
                        let waited_s = wake - barrier_entry[dst];
                        stats[dst].barrier_wait_s += waited_s;
                        metrics.observe("barrier.wait_s", mbounds::SECONDS_BOUNDS, waited_s);
                        trace.record(wake, dst as u32, || EventKind::BarrierExit { waited_s });
                    }
                    clocks[dst] = wake;
                    states[dst] = PeState::Runnable;
                    gens[dst] += 1;
                    push(&mut heap, wake, dst, gens[dst]);
                }
            }

            // Apply the program's verdict.
            match step {
                Step::Yield => {
                    gens[pe] += 1;
                    push(&mut heap, clocks[pe], pe, gens[pe]);
                }
                Step::Sleep => {
                    if let Some(arrival) = inboxes[pe].next_arrival() {
                        // A message is already on its way: advance and run.
                        let wake = clocks[pe].max(arrival);
                        stats[pe].charge(Category::Idle, wake - clocks[pe]);
                        clocks[pe] = wake;
                        gens[pe] += 1;
                        push(&mut heap, wake, pe, gens[pe]);
                    } else {
                        states[pe] = PeState::Sleeping;
                    }
                }
                Step::Barrier => {
                    if inboxes[pe].next_arrival().is_some() {
                        // Late message: process it before settling in.
                        let arrival = inboxes[pe].next_arrival().expect("checked");
                        let wake = clocks[pe].max(arrival);
                        stats[pe].charge(Category::Idle, wake - clocks[pe]);
                        clocks[pe] = wake;
                        gens[pe] += 1;
                        push(&mut heap, wake, pe, gens[pe]);
                    } else {
                        states[pe] = PeState::InBarrier;
                        barrier_entry[pe] = clocks[pe];
                        stats[pe].barriers += 1;
                        trace.record(clocks[pe], pe as u32, || EventKind::BarrierEnter);
                    }
                }
                Step::Done => {
                    assert_eq!(
                        inboxes[pe].len(),
                        0,
                        "PE {pe} finished with undelivered messages"
                    );
                    states[pe] = PeState::Done;
                }
            }
        }

        let total_time = clocks.iter().copied().fold(0.0, f64::max);
        // Phase spans: entry[i] .. entry[i+1] (last phase runs to the end).
        let mut phase_time = Vec::with_capacity(phase_entry.len());
        for i in 0..phase_entry.len() {
            let start = phase_entry[i];
            let end = if i + 1 < phase_entry.len() {
                phase_entry[i + 1]
            } else {
                total_time
            };
            phase_time.push((end - start).max(0.0));
        }

        Ok(SimReport {
            total_time,
            pes: stats,
            node_mem_peak: mem.peaks().to_vec(),
            barriers_completed,
            phase_time,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A PE that charges fixed compute then finishes.
    struct Burn {
        ops: u64,
        done: bool,
    }
    impl Program for Burn {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            if self.done {
                return Step::Done;
            }
            ctx.charge_ops(self.ops);
            self.done = true;
            Step::Done
        }
    }

    #[test]
    fn makespan_is_max_pe_time() {
        let m = MachineConfig::test_machine(1, 2); // 1 GOp/s per PE
        let sim = Simulator::new(m);
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(Burn { ops: 1_000_000_000, done: false }),
            Box::new(Burn { ops: 2_000_000_000, done: false }),
        ];
        let r = sim.run(programs).unwrap();
        assert!((r.total_time - 2.0).abs() < 1e-9);
        assert!((r.pes[0].compute_s - 1.0).abs() < 1e-9);
        assert!((r.pes[1].compute_s - 2.0).abs() < 1e-9);
    }

    /// Ping-pong: PE 0 sends, PE 1 replies, both finish.
    enum PingState {
        Start,
        AwaitReply,
        Finish,
    }
    struct Ping(PingState);
    impl Program for Ping {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            match self.0 {
                PingState::Start => {
                    ctx.send(1, 7, vec![42; 100]);
                    self.0 = PingState::AwaitReply;
                    Step::Sleep
                }
                PingState::AwaitReply => {
                    let msgs = ctx.poll();
                    if msgs.is_empty() {
                        return Step::Sleep;
                    }
                    assert_eq!(msgs[0].payload[0], 24);
                    self.0 = PingState::Finish;
                    Step::Done
                }
                PingState::Finish => Step::Done,
            }
        }
    }
    struct Pong {
        replied: bool,
    }
    impl Program for Pong {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            if self.replied {
                return Step::Done;
            }
            let msgs = ctx.poll();
            if msgs.is_empty() {
                return Step::Sleep;
            }
            assert_eq!(msgs[0].tag, 7);
            assert_eq!(msgs[0].payload.len(), 100);
            ctx.send(msgs[0].src, 8, vec![24]);
            self.replied = true;
            Step::Done
        }
    }

    #[test]
    fn ping_pong_remote_delivers_and_charges_latency() {
        let m = MachineConfig::test_machine(2, 1); // PEs 0,1 on separate nodes
        let tau = m.latency;
        let sim = Simulator::new(m);
        let r = sim
            .run(vec![
                Box::new(Ping(PingState::Start)),
                Box::new(Pong { replied: false }),
            ])
            .unwrap();
        // Arrival must include latency: total ≥ 2τ.
        assert!(r.total_time >= 2.0 * tau);
        assert_eq!(r.pes[0].msgs_sent_remote, 1);
        assert_eq!(r.pes[1].msgs_received, 1);
        assert_eq!(r.pes[0].bytes_sent_remote, 100);
        assert_eq!(r.pes[1].bytes_received, 100);
        assert!(r.pes[0].idle_s > 0.0, "ping waited for the reply");
    }

    #[test]
    fn ping_pong_local_has_no_latency_and_counts_local() {
        let m = MachineConfig::test_machine(1, 2); // colocated
        let sim = Simulator::new(m);
        let r = sim
            .run(vec![
                Box::new(Ping(PingState::Start)),
                Box::new(Pong { replied: false }),
            ])
            .unwrap();
        assert_eq!(r.pes[0].msgs_sent_local, 1);
        assert_eq!(r.pes[0].msgs_sent_remote, 0);
        assert_eq!(r.remote_bytes(), 0);
        assert_eq!(r.local_bytes(), 101);
    }

    /// All PEs barrier once, with PE 0 slower; everyone leaves at the same
    /// virtual time.
    struct BarrierOnce {
        ops: u64,
        phase: u8,
    }
    impl Program for BarrierOnce {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            match self.phase {
                0 => {
                    ctx.charge_ops(self.ops);
                    self.phase = 1;
                    Step::Barrier
                }
                1 => {
                    // After the barrier all clocks must be equal.
                    self.phase = 2;
                    Step::Done
                }
                _ => Step::Done,
            }
        }
    }

    #[test]
    fn barrier_synchronizes_clocks_and_counts_waits() {
        let m = MachineConfig::test_machine(1, 4);
        let sim = Simulator::new(m);
        let programs: Vec<Box<dyn Program>> = (0..4)
            .map(|i| {
                Box::new(BarrierOnce {
                    ops: (i as u64 + 1) * 1_000_000_000,
                    phase: 0,
                }) as Box<dyn Program>
            })
            .collect();
        let r = sim.run(programs).unwrap();
        assert_eq!(r.barriers_completed, 1);
        // Slowest PE: 4s of compute. Everyone waits for it.
        assert!(r.total_time >= 4.0);
        // Fastest PE idled ≈ 3 s in the barrier.
        assert!(r.pes[0].barrier_wait_s > 2.9);
        assert!(r.pes[3].barrier_wait_s < 0.5);
    }

    /// Messages sent *to a PE already in the barrier* must wake it.
    struct LateSender {
        sent: bool,
    }
    impl Program for LateSender {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            if !self.sent {
                ctx.charge_ops(5_000_000_000); // slow start
                ctx.send(1, 0, vec![9; 8]);
                self.sent = true;
                return Step::Barrier;
            }
            Step::Done
        }
    }
    struct LateReceiver {
        got: bool,
    }
    impl Program for LateReceiver {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            let had_mail = !ctx.poll().is_empty();
            if had_mail {
                self.got = true;
                // Re-enter the barrier after processing the late arrival.
                Step::Barrier
            } else if self.got {
                // Stepped again with no mail ⇒ the barrier released us.
                Step::Done
            } else {
                Step::Barrier
            }
        }
    }

    #[test]
    fn barrier_is_quiescent_messages_processed_before_release() {
        let m = MachineConfig::test_machine(2, 1);
        let sim = Simulator::new(m);
        // Receiver enters the barrier immediately; sender computes 5 s then
        // sends and barriers. Quiescence requires the receiver to wake and
        // poll the message before the barrier completes.
        let r = sim
            .run(vec![
                Box::new(LateSender { sent: false }),
                Box::new(LateReceiver { got: false }),
            ])
            .unwrap();
        assert_eq!(r.barriers_completed, 1);
        assert_eq!(r.pes[1].msgs_received, 1);
    }

    #[test]
    fn deadlock_detected() {
        struct Stuck;
        impl Program for Stuck {
            fn step(&mut self, _ctx: &mut Ctx<'_>) -> Step {
                Step::Sleep
            }
        }
        let m = MachineConfig::test_machine(1, 2);
        let sim = Simulator::new(m);
        let err = sim
            .run(vec![Box::new(Stuck), Box::new(Stuck)])
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn oom_aborts() {
        struct Hog;
        impl Program for Hog {
            fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
                ctx.mem_alloc(u64::MAX / 2);
                Step::Done
            }
        }
        let m = MachineConfig::test_machine(1, 1);
        let sim = Simulator::new(m);
        let err = sim.run(vec![Box::new(Hog)]).unwrap_err();
        assert!(matches!(err, SimError::Oom(_)));
    }

    #[test]
    fn determinism_same_inputs_same_report() {
        let m = MachineConfig::test_machine(2, 2);
        let make = || -> Vec<Box<dyn Program>> {
            (0..4)
                .map(|i| {
                    Box::new(BarrierOnce {
                        ops: (i as u64 * 37 + 11) * 1_000_000,
                        phase: 0,
                    }) as Box<dyn Program>
                })
                .collect()
        };
        let r1 = Simulator::new(m.clone()).run(make()).unwrap();
        let r2 = Simulator::new(m).run(make()).unwrap();
        assert_eq!(r1.total_time.to_bits(), r2.total_time.to_bits());
        assert_eq!(r1.pes, r2.pes);
    }

    #[test]
    fn phase_markers_produce_spans() {
        struct TwoPhase {
            at: u8,
        }
        impl Program for TwoPhase {
            fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
                match self.at {
                    0 => {
                        ctx.set_phase(0);
                        ctx.charge_ops(1_000_000_000);
                        self.at = 1;
                        Step::Barrier
                    }
                    1 => {
                        ctx.set_phase(1);
                        ctx.charge_ops(2_000_000_000);
                        self.at = 2;
                        Step::Done
                    }
                    _ => Step::Done,
                }
            }
        }
        let m = MachineConfig::test_machine(1, 2);
        let sim = Simulator::new(m);
        let r = sim
            .run(vec![Box::new(TwoPhase { at: 0 }), Box::new(TwoPhase { at: 0 })])
            .unwrap();
        assert_eq!(r.phase_time.len(), 2);
        // Phase 0 also carries the barrier release cost (a few µs).
        assert!((r.phase_time[0] - 1.0).abs() < 1e-4, "{:?}", r.phase_time);
        assert!((r.phase_time[1] - 2.0).abs() < 1e-4, "{:?}", r.phase_time);
    }
}
