//! A set-associative cache simulator.
//!
//! Stands in for the PAPI last-level-cache miss counters the paper uses to
//! validate its analytical model (Fig 3). The paper's model assumes a
//! two-level hierarchy with capacity `Z`, line size `L` and an *optimal*
//! replacement policy; this simulator measures misses under LRU over the
//! real address streams of the instrumented algorithms, so measured counts
//! land slightly **above** the model's prediction — the same relationship
//! the paper reports for phase 1.
//!
//! Addresses are abstract byte offsets: instrumented code models each of
//! its arrays as a disjoint address region and replays its reads/writes.

/// Set-associative LRU cache with per-access miss counting.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: usize,
    sets: usize,
    ways: usize,
    /// `tags[set * ways + way]` — line tag or `u64::MAX` when invalid.
    tags: Vec<u64>,
    /// Monotone use-stamps for LRU.
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Builds a cache of `capacity_bytes` with `line_bytes` lines and
    /// `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity_bytes` is divisible by `line_bytes * ways`
    /// and all parameters are nonzero.
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        assert!(capacity_bytes > 0 && line_bytes > 0 && ways > 0);
        let lines = capacity_bytes / line_bytes;
        assert!(lines >= ways && lines.is_multiple_of(ways), "capacity must fit whole sets");
        let sets = lines / ways;
        Self {
            line_bytes,
            sets,
            ways,
            tags: vec![u64::MAX; lines],
            stamps: vec![0; lines],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// A cache shaped like the paper's Table IV LLC: `Z` = 38 MB is not a
    /// power of two, so we keep the line count exact and use 16-way
    /// associativity split over `lines/16` sets.
    pub fn phoenix_llc() -> Self {
        // 38 MB / 64 B = 622,592 lines = 16 ways × 38,912 sets.
        Self::new(38 << 20, 64, 16)
    }

    /// Touches one byte address; returns `true` on a miss.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes as u64;
        let set = (line % self.sets as u64) as usize;
        self.tick += 1;
        let base = set * self.ways;
        let slots = base..base + self.ways;

        // Hit?
        for i in slots.clone() {
            if self.tags[i] == line {
                self.stamps[i] = self.tick;
                self.hits += 1;
                return false;
            }
        }
        // Miss: evict LRU way.
        self.misses += 1;
        let victim = slots.min_by_key(|&i| self.stamps[i]).expect("ways >= 1");
        self.tags[victim] = line;
        self.stamps[victim] = self.tick;
        true
    }

    /// Streams sequentially through `[start, start + len)` byte addresses,
    /// touching each line once.
    pub fn access_range(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let lb = self.line_bytes as u64;
        let first = start / lb;
        let last = (start + len - 1) / lb;
        for line in first..=last {
            self.access(line * lb);
        }
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Resets the counters but keeps cache contents (to separate phases).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_misses_then_hits() {
        let mut c = CacheSim::new(1024, 64, 2);
        assert!(c.access(0));
        assert!(!c.access(0));
        assert!(!c.access(63)); // same line
        assert!(c.access(64)); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn capacity_eviction_lru() {
        // 2 sets × 2 ways × 64 B = 256 B cache.
        let mut c = CacheSim::new(256, 64, 2);
        // Three lines mapping to set 0: lines 0, 2, 4 (even lines).
        assert!(c.access(0));
        assert!(c.access(2 * 64));
        assert!(c.access(4 * 64)); // evicts line 0 (LRU)
        assert!(c.access(0)); // line 0 gone again
        assert!(!c.access(4 * 64)); // still resident
    }

    #[test]
    fn sequential_stream_misses_once_per_line() {
        let mut c = CacheSim::new(4096, 64, 4);
        c.access_range(0, 1024);
        assert_eq!(c.misses(), 16);
        assert_eq!(c.hits(), 0);
        c.access_range(0, 1024); // refetch: all resident
        assert_eq!(c.misses(), 16);
        assert_eq!(c.hits(), 16);
    }

    #[test]
    fn unaligned_range_counts_straddled_lines() {
        let mut c = CacheSim::new(4096, 64, 4);
        c.access_range(60, 8); // straddles lines 0 and 1
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let cap = 1024usize;
        let mut c = CacheSim::new(cap, 64, 2);
        // Stream 4× capacity twice: second pass still misses (LRU).
        c.access_range(0, 4 * cap as u64);
        let first = c.misses();
        c.access_range(0, 4 * cap as u64);
        assert_eq!(c.misses(), 2 * first);
    }

    #[test]
    fn phoenix_llc_shape() {
        let c = CacheSim::phoenix_llc();
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    fn reset_counters_keeps_contents() {
        let mut c = CacheSim::new(1024, 64, 2);
        c.access(0);
        c.reset_counters();
        assert_eq!(c.misses(), 0);
        assert!(!c.access(0), "contents survived the reset");
    }
}
