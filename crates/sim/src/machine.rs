//! Machine topology and cost constants.
//!
//! Mirrors the paper's Table IV ("Model parameters for Phoenix") plus the
//! latency/bandwidth symbols τ and μ of Table I. All rates are in base SI
//! units (bytes/second, operations/second, seconds) to keep arithmetic in
//! the scheduler trivial.


/// Index of a processing element (one simulated core).
pub type PeId = usize;

/// The simulated cluster: topology plus the cost constants that convert
/// measured work into virtual seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of nodes in the allocation.
    pub nodes: usize,
    /// PEs (cores) per node. Phoenix Intel nodes expose 24.
    pub pes_per_node: usize,
    /// Peak 64-bit integer throughput per *node*, ops/s (Table IV
    /// `C_node` = 121.9 GOp/s).
    pub node_ops_per_sec: f64,
    /// Sustained memory bandwidth per *node*, B/s (Table IV `β_mem` =
    /// 46.9 GB/s).
    pub mem_bandwidth: f64,
    /// Last-level cache capacity per node, bytes (Table IV `Z` = 38 MB).
    pub cache_bytes: usize,
    /// Cache line size, bytes (Table IV `L` = 64 B).
    pub line_bytes: usize,
    /// Combined bidirectional NIC bandwidth per node, B/s (Table IV
    /// `β_link` = 12.5 GB/s).
    pub link_bandwidth: f64,
    /// One-way remote message latency τ, seconds. InfiniBand-class RDMA
    /// put latency; the paper only requires τ ≫ μ.
    pub latency: f64,
    /// Main-memory capacity per node, bytes; exceeded ⇒ OOM (Fig 8).
    /// Phoenix Intel nodes have 192 GB.
    pub node_memory: u64,
}

impl MachineConfig {
    /// Phoenix Intel node parameters (paper Table IV; 192 GB DDR4,
    /// dual-socket Xeon Gold 6226, 24 cores).
    pub fn phoenix_intel(nodes: usize) -> Self {
        Self {
            nodes,
            pes_per_node: 24,
            node_ops_per_sec: 121.9e9,
            mem_bandwidth: 46.9e9,
            cache_bytes: 38 << 20,
            line_bytes: 64,
            link_bandwidth: 12.5e9,
            latency: 2.0e-6,
            node_memory: 192 << 30,
        }
    }

    /// Phoenix AMD node (dual EPYC 7742, 128 cores, 512 GB), used for the
    /// single-node shared-memory comparison of Fig 9.
    pub fn phoenix_amd(nodes: usize) -> Self {
        Self {
            nodes,
            pes_per_node: 128,
            node_ops_per_sec: 256.0e9,
            mem_bandwidth: 190.0e9,
            cache_bytes: 256 << 20,
            line_bytes: 64,
            link_bandwidth: 12.5e9,
            latency: 2.0e-6,
            node_memory: 512 << 30,
        }
    }

    /// A tiny fast machine for unit tests: costs are simple round numbers
    /// so tests can assert exact virtual times.
    pub fn test_machine(nodes: usize, pes_per_node: usize) -> Self {
        Self {
            nodes,
            pes_per_node,
            node_ops_per_sec: 1e9 * pes_per_node as f64,
            mem_bandwidth: 1e9,
            cache_bytes: 1 << 20,
            line_bytes: 64,
            link_bandwidth: 1e9,
            latency: 1e-6,
            node_memory: 1 << 30,
        }
    }

    /// Total PEs in the allocation.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.nodes * self.pes_per_node
    }

    /// Node that hosts `pe` (PEs are block-distributed over nodes).
    #[inline]
    pub fn node_of(&self, pe: PeId) -> usize {
        pe / self.pes_per_node
    }

    /// `true` if the two PEs share a node (their traffic is memcpy, not
    /// NIC — paper §VI-B).
    #[inline]
    pub fn colocated(&self, a: PeId, b: PeId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Per-PE share of node integer throughput, ops/s.
    #[inline]
    pub fn pe_ops_per_sec(&self) -> f64 {
        self.node_ops_per_sec / self.pes_per_node as f64
    }

    /// Per-PE share of node memory bandwidth, B/s.
    #[inline]
    pub fn pe_mem_bandwidth(&self) -> f64 {
        self.mem_bandwidth / self.pes_per_node as f64
    }

    /// Per-PE share of NIC bandwidth, B/s.
    #[inline]
    pub fn pe_link_bandwidth(&self) -> f64 {
        self.link_bandwidth / self.pes_per_node as f64
    }

    /// Seconds to execute `ops` 64-bit integer operations on one PE.
    #[inline]
    pub fn ops_time(&self, ops: u64) -> f64 {
        ops as f64 / self.pe_ops_per_sec()
    }

    /// Seconds for one PE to stream `bytes` through main memory.
    #[inline]
    pub fn mem_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.pe_mem_bandwidth()
    }

    /// Seconds of NIC occupancy for one PE to inject `bytes`.
    #[inline]
    pub fn link_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.pe_link_bandwidth()
    }

    /// Cost of one tree barrier over `p` participants:
    /// `Θ(τ log P + μ log P)` (paper Eq 3). We take μ·logP as one latency
    /// per level with a machine-word payload folded into τ.
    pub fn barrier_time(&self, p: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            let levels = (p as f64).log2().ceil();
            2.0 * self.latency * levels
        }
    }

    /// The per-byte wire cost μ (inverse NIC bandwidth per PE).
    #[inline]
    pub fn mu(&self) -> f64 {
        1.0 / self.pe_link_bandwidth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phoenix_matches_table_iv() {
        let m = MachineConfig::phoenix_intel(8);
        assert_eq!(m.num_pes(), 192); // the paper's "8 nodes (192 cores)"
        assert!((m.node_ops_per_sec - 121.9e9).abs() < 1e6);
        assert!((m.mem_bandwidth - 46.9e9).abs() < 1e6);
        assert_eq!(m.cache_bytes, 38 << 20);
        assert_eq!(m.line_bytes, 64);
        assert!((m.link_bandwidth - 12.5e9).abs() < 1e6);
    }

    #[test]
    fn node_mapping_is_block() {
        let m = MachineConfig::test_machine(3, 4);
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(3), 0);
        assert_eq!(m.node_of(4), 1);
        assert_eq!(m.node_of(11), 2);
        assert!(m.colocated(0, 3));
        assert!(!m.colocated(3, 4));
    }

    #[test]
    fn cost_helpers_are_linear() {
        let m = MachineConfig::test_machine(1, 2);
        // 2 PEs share 2 GOp/s ⇒ 1 GOp/s each ⇒ 1e9 ops take 1 s.
        assert!((m.ops_time(1_000_000_000) - 1.0).abs() < 1e-12);
        // Memory: 1 GB/s shared by 2 ⇒ 0.5 GB/s each.
        assert!((m.mem_time(500_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn barrier_grows_logarithmically() {
        let m = MachineConfig::test_machine(16, 1);
        assert_eq!(m.barrier_time(1), 0.0);
        let b2 = m.barrier_time(2);
        let b16 = m.barrier_time(16);
        assert!(b16 > b2);
        assert!((b16 / b2 - 4.0).abs() < 1e-9); // log2(16)/log2(2)
    }

    #[test]
    fn tau_much_greater_than_mu() {
        // The paper's standing assumption τ ≫ μ must hold for the presets.
        let m = MachineConfig::phoenix_intel(1);
        assert!(m.latency > 100.0 * m.mu());
    }
}
