//! Per-node memory budgets.
//!
//! Programs declare their significant allocations (receive arrays, buffer
//! pools, sort scratch) through [`crate::Ctx::mem_alloc`]; the tracker sums
//! them per node and trips an OOM error when a node exceeds its budget —
//! reproducing the OOM failures that eliminate PakMan\* and HySortK from
//! the paper's Fig 8.

use crate::machine::MachineConfig;

/// Tracks live and peak allocation per node.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    budget: u64,
    live: Vec<u64>,
    peak: Vec<u64>,
}

/// Raised when a node's live allocation exceeds its budget.
#[derive(Debug, Clone, PartialEq)]
pub struct OomError {
    /// The node that ran out of memory.
    pub node: usize,
    /// Live bytes after the failing allocation.
    pub attempted: u64,
    /// The node's budget in bytes.
    pub budget: u64,
}

impl MemoryTracker {
    /// Creates a tracker for the machine's nodes and per-node budget.
    pub fn new(machine: &MachineConfig) -> Self {
        Self {
            budget: machine.node_memory,
            live: vec![0; machine.nodes],
            peak: vec![0; machine.nodes],
        }
    }

    /// Registers `bytes` of new allocation on `node`.
    pub fn alloc(&mut self, node: usize, bytes: u64) -> Result<(), OomError> {
        self.live[node] += bytes;
        if self.live[node] > self.peak[node] {
            self.peak[node] = self.live[node];
        }
        if self.live[node] > self.budget {
            return Err(OomError {
                node,
                attempted: self.live[node],
                budget: self.budget,
            });
        }
        Ok(())
    }

    /// Releases `bytes` on `node`.
    ///
    /// # Panics
    ///
    /// Panics if more is freed than is live (an accounting bug in the
    /// calling program).
    pub fn free(&mut self, node: usize, bytes: u64) {
        assert!(
            self.live[node] >= bytes,
            "node {node}: freeing {bytes} B with only {} B live",
            self.live[node]
        );
        self.live[node] -= bytes;
    }

    /// Live bytes on `node`.
    pub fn live(&self, node: usize) -> u64 {
        self.live[node]
    }

    /// Peak bytes per node (for [`crate::SimReport`]).
    pub fn peaks(&self) -> &[u64] {
        &self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(budget: u64) -> MemoryTracker {
        let mut m = MachineConfig::test_machine(2, 1);
        m.node_memory = budget;
        MemoryTracker::new(&m)
    }

    #[test]
    fn alloc_free_tracks_peak() {
        let mut t = tracker(100);
        t.alloc(0, 40).unwrap();
        t.alloc(0, 30).unwrap();
        t.free(0, 50);
        assert_eq!(t.live(0), 20);
        assert_eq!(t.peaks()[0], 70);
        assert_eq!(t.peaks()[1], 0);
    }

    #[test]
    fn oom_trips_at_budget() {
        let mut t = tracker(100);
        t.alloc(1, 100).unwrap();
        let err = t.alloc(1, 1).unwrap_err();
        assert_eq!(err.node, 1);
        assert_eq!(err.attempted, 101);
        assert_eq!(err.budget, 100);
    }

    #[test]
    fn nodes_are_independent() {
        let mut t = tracker(100);
        t.alloc(0, 100).unwrap();
        t.alloc(1, 100).unwrap();
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut t = tracker(100);
        t.alloc(0, 10).unwrap();
        t.free(0, 11);
    }
}
