//! A minimal, dependency-free subset of the `proptest` API.
//!
//! The workspace builds in environments with no access to crates.io, so
//! this shim provides the surface the test suites actually use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_filter`,
//! `any::<T>()`, integer-range strategies, tuple strategies,
//! `prop::collection::vec` and `prop::sample::select`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test deterministic RNG (seeded from the test's module path and
//! name), and failures are reported by panicking on the offending input
//! without shrinking.

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy,
    };
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic RNG used for case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from an arbitrary name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, so every test has its own stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A generator of values (shrinking-free shim of proptest's trait).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` is true (regenerates otherwise).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 consecutive values", self.whence);
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for an arbitrary value of `T`.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (((rng.next_u64() as u128) % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                lo + (((rng.next_u64() as u128) % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Namespaced combinators, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for vectors with lengths drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.start >= self.len.end {
                    self.len.start
                } else {
                    self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize
                };
                (0..n).map(|_| self.elem.new_value(rng)).collect()
            }
        }

        /// `vec(elem, 0..n)`: vectors of `elem` values.
        pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniform choice from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn new_value(&self, rng: &mut TestRng) -> T {
                assert!(!self.0.is_empty(), "select from empty list");
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// `select(items)`: draws uniformly from `items`.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            Select(items)
        }
    }
}

/// Assert inside a property (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $( $p:pat in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            #[allow(unused_mut, unused_variables)]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cfg.cases {
                    $( let $p = $crate::Strategy::new_value(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = super::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u32..=4).new_value(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = super::TestRng::from_name("x");
        let mut b = super::TestRng::from_name("x");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u64>(), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
        }

        #[test]
        fn select_picks_members(b in prop::sample::select(vec![1u8, 5, 9]), mut x in 0u8..3) {
            x += 1;
            prop_assert!(b == 1 || b == 5 || b == 9);
            prop_assert!(x >= 1);
        }

        #[test]
        fn map_and_filter_compose(s in prop::collection::vec(0u8..4, 0..20)
            .prop_map(|v| v.len())
            .prop_filter("even", |n| n % 2 == 0))
        {
            prop_assert_eq!(s % 2, 0);
        }
    }
}
