//! A minimal, dependency-free subset of the `criterion` API.
//!
//! The workspace builds in environments with no access to crates.io, so
//! this shim provides the benchmark surface the repo uses: `black_box`,
//! [`Criterion`] with `benchmark_group`/`bench_function`/
//! `bench_with_input`, [`Throughput`], [`BenchmarkId`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up, then timed
//! batches until ~60 ms of samples are collected; the mean ns/iter and
//! derived throughput are printed to stdout. There is no statistical
//! analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name plus a parameter value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, recording the mean wall-clock cost per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run for ~10ms to stabilize caches and branch predictors.
        let warm_until = Instant::now() + Duration::from_millis(10);
        let mut batch = 1u64;
        while Instant::now() < warm_until {
            for _ in 0..batch {
                black_box(routine());
            }
            batch = (batch * 2).min(1 << 20);
        }

        // Measurement: accumulate ~60ms of timed batches.
        let mut total_ns = 0u128;
        let mut total_iters = 0u64;
        let measure_until = Instant::now() + Duration::from_millis(60);
        while Instant::now() < measure_until {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_ns += start.elapsed().as_nanos();
            total_iters += batch;
        }
        self.mean_ns = if total_iters == 0 { 0.0 } else { total_ns as f64 / total_iters as f64 };
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn fmt_throughput(tp: Throughput, ns: f64) -> String {
    let per_sec = |n: u64| n as f64 / (ns / 1e9);
    match tp {
        Throughput::Bytes(n) => {
            let bps = per_sec(n);
            if bps >= 1e9 {
                format!("{:.2} GiB/s", bps / (1u64 << 30) as f64)
            } else {
                format!("{:.2} MiB/s", bps / (1u64 << 20) as f64)
            }
        }
        Throughput::Elements(n) => format!("{:.2} Melem/s", per_sec(n) / 1e6),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; sampling here is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        let mut line = format!("{}/{}  time: {}", self.name, id, fmt_time(b.mean_ns));
        if let Some(tp) = self.throughput {
            line.push_str(&format!("  thrpt: {}", fmt_throughput(tp, b.mean_ns)));
        }
        println!("{line}");
    }

    /// Benches `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        self.run_one(id.to_string(), f);
    }

    /// Benches `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run_one(id.to_string(), |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _parent: self }
    }

    /// Benches `f` directly at the top level.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        println!("{}  time: {}", id, fmt_time(b.mean_ns));
        self
    }
}

/// Declares a group-runner function invoking each listed benchmark fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
