//! # dakc-conveyors — buffered, routed, asynchronous many-to-many communication
//!
//! A reimplementation of the two runtime-owned aggregation layers the paper
//! builds on (§IV-A/B):
//!
//! * **L0 — Conveyors** ([`conveyor`]): per-neighbor send buffers flushed
//!   with one-sided `PUT`s, with three routing protocols (Table II):
//!
//!   | protocol | virtual topology | buffers/PE | hops |
//!   |----------|------------------|------------|------|
//!   | 1D       | all-connected    | `O(P)`     | 1    |
//!   | 2D       | √P × √P HyperX   | `O(√P)`    | ≤ 2  |
//!   | 3D       | ∛P³ HyperX       | `O(∛P)`    | ≤ 3  |
//!
//!   2D/3D packets carry a 32-bit final-destination header — the overhead
//!   that motivates the paper's application-level L2 packing.
//!
//! * **L1 — HClib Actor** ([`actor`]): a per-PE staging buffer of `C1`
//!   packets drained into the conveyor, decoupling the application from L0
//!   buffer management exactly as the HClib Actor runtime does.
//!
//! Both layers run *inside* [`dakc_sim`] programs: all buffer traffic is
//! real bytes through the simulator's transport, so protocol memory
//! (Fig 2), hop counts (Table II) and header overhead (Fig 12) are
//! measured, not assumed.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod actor;
pub mod conveyor;
pub mod fabric;
pub mod topo;

pub use actor::{Actor, ActorConfig};
pub use conveyor::{ChannelKind, ConvStats, Conveyor, ConveyorConfig, Stage};
pub use fabric::Fabric;
pub use topo::{Protocol, Topology};
