//! Virtual routing topologies (paper Table II).
//!
//! The *virtual* topology dictates which PEs exchange buffers directly —
//! not the physical interconnect. 1D connects everyone to everyone (one
//! hop, `O(P)` buffers per PE); 2D arranges PEs in a `rows × cols` grid
//! where a message first travels along the sender's row to the
//! destination's column, then down that column (two hops, `O(√P)`
//! buffers); 3D adds a third axis (three hops, `O(∛P)`).
//!
//! Routing fixes coordinates one axis at a time, which makes routes
//! cycle-free; when `P` is not a perfect square/cube the grid is ragged
//! and a missing intermediate falls back to a direct hop.

use dakc_sim::PeId;

/// Conveyor routing protocol (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// All-connected, 1 hop, `O(P)` buffers/PE.
    OneD,
    /// 2D HyperX, ≤ 2 hops, `O(P^1/2)` buffers/PE.
    TwoD,
    /// 3D HyperX, ≤ 3 hops, `O(P^1/3)` buffers/PE.
    ThreeD,
}

impl Protocol {
    /// The `x` exponent of Table III's `P^x` buffer count.
    pub fn exponent(self) -> f64 {
        match self {
            Protocol::OneD => 1.0,
            Protocol::TwoD => 0.5,
            Protocol::ThreeD => 1.0 / 3.0,
        }
    }

    /// Maximum hops a packet takes (Table II).
    pub fn max_hops(self) -> usize {
        match self {
            Protocol::OneD => 1,
            Protocol::TwoD => 2,
            Protocol::ThreeD => 3,
        }
    }
}

/// A concrete routing topology over `p` PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    protocol: Protocol,
    p: usize,
    /// 2D: columns per row. 3D: side length.
    side: usize,
}

impl Topology {
    /// Builds the topology for `p` PEs.
    pub fn new(protocol: Protocol, p: usize) -> Self {
        assert!(p > 0);
        let side = match protocol {
            Protocol::OneD => p,
            Protocol::TwoD => (p as f64).sqrt().ceil() as usize,
            Protocol::ThreeD => {
                let mut s = (p as f64).cbrt().round() as usize;
                while s * s * s < p {
                    s += 1;
                }
                s
            }
        }
        .max(1);
        Self { protocol, p, side }
    }

    /// The protocol this topology implements.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.p
    }

    /// The next PE a packet at `cur` headed for `dst` must visit.
    ///
    /// Returns `dst` itself when they are directly connected (always, for
    /// 1D). Never returns `cur` for `cur != dst`.
    pub fn next_hop(&self, cur: PeId, dst: PeId) -> PeId {
        debug_assert!(cur < self.p && dst < self.p);
        if cur == dst {
            return dst;
        }
        match self.protocol {
            Protocol::OneD => dst,
            Protocol::TwoD => {
                let s = self.side;
                let (rc, cc) = (cur / s, cur % s);
                let cd = dst % s;
                if cc == cd {
                    dst // same column: direct column link
                } else {
                    let mid = rc * s + cd; // sender's row, destination's column
                    if mid >= self.p || mid == cur {
                        dst // ragged grid: fall back to direct
                    } else {
                        mid
                    }
                }
            }
            Protocol::ThreeD => {
                let s = self.side;
                let (xc, yc, zc) = (cur % s, (cur / s) % s, cur / (s * s));
                let (xd, yd, _zd) = (dst % s, (dst / s) % s, dst / (s * s));
                let cand = if xc != xd {
                    zc * s * s + yc * s + xd
                } else if yc != yd {
                    zc * s * s + yd * s + xc
                } else {
                    dst // x and y match: direct z link
                };
                if cand >= self.p || cand == cur {
                    dst
                } else {
                    cand
                }
            }
        }
    }

    /// Number of distinct direct neighbors `pe` can send to — the number
    /// of L0 buffers it must hold (Table III's `P^x`).
    pub fn out_degree(&self, pe: PeId) -> usize {
        debug_assert!(pe < self.p);
        match self.protocol {
            Protocol::OneD => self.p.saturating_sub(1),
            Protocol::TwoD => {
                let s = self.side;
                let row = pe / s;
                // Row mates that exist…
                let row_mates = (s.min(self.p - row * s)).saturating_sub(1);
                // …and column mates.
                let col = pe % s;
                let col_mates = ((self.p - col - 1) / s + 1).saturating_sub(1);
                row_mates + col_mates
            }
            Protocol::ThreeD => {
                let s = self.side;
                let (x, y, z) = (pe % s, (pe / s) % s, pe / (s * s));
                let count_axis = |f: &dyn Fn(usize) -> usize| -> usize {
                    (0..s).filter(|&v| f(v) < self.p && f(v) != pe).count()
                };
                count_axis(&|v| z * s * s + y * s + v)
                    + count_axis(&|v| z * s * s + v * s + x)
                    + count_axis(&|v| v * s * s + y * s + x)
            }
        }
    }

    /// Number of hops a packet from `src` to `dst` takes.
    pub fn hops(&self, src: PeId, dst: PeId) -> usize {
        if src == dst {
            return 0;
        }
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            cur = self.next_hop(cur, dst);
            hops += 1;
            assert!(hops <= 4, "routing must converge");
        }
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_d_is_direct() {
        let t = Topology::new(Protocol::OneD, 7);
        for s in 0..7 {
            for d in 0..7 {
                if s != d {
                    assert_eq!(t.next_hop(s, d), d);
                    assert_eq!(t.hops(s, d), 1);
                }
            }
        }
        assert_eq!(t.out_degree(3), 6);
    }

    #[test]
    fn two_d_routes_in_at_most_two_hops() {
        for p in [4usize, 9, 16, 12, 17, 64] {
            let t = Topology::new(Protocol::TwoD, p);
            for s in 0..p {
                for d in 0..p {
                    assert!(t.hops(s, d) <= 2, "P={p} {s}->{d}");
                }
            }
        }
    }

    #[test]
    fn three_d_routes_in_at_most_three_hops() {
        for p in [8usize, 27, 64, 30, 100] {
            let t = Topology::new(Protocol::ThreeD, p);
            for s in 0..p {
                for d in 0..p {
                    assert!(t.hops(s, d) <= 3, "P={p} {s}->{d}");
                }
            }
        }
    }

    #[test]
    fn next_hop_never_self_loops() {
        for proto in [Protocol::OneD, Protocol::TwoD, Protocol::ThreeD] {
            for p in [5usize, 16, 27, 50] {
                let t = Topology::new(proto, p);
                for s in 0..p {
                    for d in 0..p {
                        if s != d {
                            assert_ne!(t.next_hop(s, d), s, "{proto:?} P={p} {s}->{d}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn out_degree_scales_with_exponent() {
        let p = 4096;
        let d1 = Topology::new(Protocol::OneD, p).out_degree(0);
        let d2 = Topology::new(Protocol::TwoD, p).out_degree(0);
        let d3 = Topology::new(Protocol::ThreeD, p).out_degree(0);
        assert_eq!(d1, p - 1);
        assert_eq!(d2, 2 * (64 - 1)); // 64×64 grid
        assert_eq!(d3, 3 * (16 - 1)); // 16³ cube
        assert!(d1 > d2 && d2 > d3);
    }

    #[test]
    fn two_d_intermediate_is_row_then_column() {
        // 3×3 grid: 0 1 2 / 3 4 5 / 6 7 8. From 0 to 8: row hop to 2
        // (row 0, col 2), then column hop to 8.
        let t = Topology::new(Protocol::TwoD, 9);
        assert_eq!(t.next_hop(0, 8), 2);
        assert_eq!(t.next_hop(2, 8), 8);
    }

    #[test]
    fn singleton_topology() {
        for proto in [Protocol::OneD, Protocol::TwoD, Protocol::ThreeD] {
            let t = Topology::new(proto, 1);
            assert_eq!(t.hops(0, 0), 0);
            assert_eq!(t.out_degree(0), 0);
        }
    }

    #[test]
    fn exponents_and_hops() {
        assert_eq!(Protocol::OneD.max_hops(), 1);
        assert_eq!(Protocol::TwoD.max_hops(), 2);
        assert_eq!(Protocol::ThreeD.max_hops(), 3);
        assert!((Protocol::TwoD.exponent() - 0.5).abs() < 1e-12);
    }
}
