//! The delivery-fabric abstraction underneath the cascade.
//!
//! Every layer that moves bytes — L0 conveyor buffers, L1 actor staging,
//! and the application's L2/L3 packing built on top — talks to its runtime
//! through this trait instead of the simulator's [`Ctx`] directly. Two
//! families of implementation exist:
//!
//! * [`Ctx`] — virtual-time discrete-event delivery, where `charge_*`
//!   advances the simulated clock and `poll` drains the simulated inbox;
//! * real transports (`dakc-net`'s `NetFabric`) — wall-clock delivery
//!   between OS processes, where cost charges are no-ops (time passes by
//!   itself) and `poll` drains a socket.
//!
//! The cascade code is identical in both worlds. In particular the wire
//! bytes a conveyor produces are the same, which is what lets real
//! multi-process runs be bit-identical to the simulator and the serial
//! baseline.

use dakc_sim::telemetry::MetricsRegistry;
use dakc_sim::{Ctx, EventKind, FlowTag, Msg, PeId};

/// The runtime surface the cascade needs: identity, timing, cost charging,
/// message delivery and telemetry.
///
/// Methods mirror the subset of [`Ctx`] the conveyor layers actually use,
/// so `impl Fabric for Ctx<'_>` is pure delegation and existing simulator
/// programs keep passing their `ctx` unchanged.
pub trait Fabric {
    /// This endpoint's rank (PE id).
    fn pe(&self) -> PeId;

    /// Total ranks participating in the run.
    fn num_pes(&self) -> usize;

    /// Current time in seconds — virtual on the simulator, wall-clock on a
    /// real transport. Only ever compared against other values from the
    /// same fabric (flow-stage residencies).
    fn now(&self) -> f64;

    /// Charges `ops` integer operations. Advances virtual time on the
    /// simulator; a no-op on real fabrics.
    fn charge_ops(&mut self, ops: u64);

    /// Charges `bytes` of streaming memory traffic.
    fn charge_mem(&mut self, bytes: u64);

    /// Bytes of last-level cache available to this endpoint, for the
    /// cache-aware sort cost models. Real fabrics return 0 (no model:
    /// charges are no-ops anyway).
    fn cache_share_bytes(&self) -> u64;

    /// Registers `bytes` of buffer memory for peak-memory accounting.
    fn mem_alloc(&mut self, bytes: u64);

    /// Returns buffer memory registered with [`Fabric::mem_alloc`].
    fn mem_free(&mut self, bytes: u64);

    /// Nonblocking buffered send of `payload` to `dst` on channel `tag`,
    /// with out-of-band causal flow tags (never wire bytes).
    fn send_with_flows(
        &mut self,
        dst: PeId,
        tag: u32,
        payload: Vec<u8>,
        flows: Vec<(u32, FlowTag)>,
    );

    /// Delivers every message that has arrived, in arrival order.
    fn poll(&mut self) -> Vec<Msg>;

    /// The run's metrics registry.
    fn metrics(&mut self) -> &mut MetricsRegistry;

    /// Records a trace event (lazily built; dropped when tracing is off).
    fn trace(&mut self, make: impl FnOnce() -> EventKind);
}

impl Fabric for Ctx<'_> {
    fn pe(&self) -> PeId {
        Ctx::pe(self)
    }

    fn num_pes(&self) -> usize {
        Ctx::num_pes(self)
    }

    fn now(&self) -> f64 {
        Ctx::now(self)
    }

    fn charge_ops(&mut self, ops: u64) {
        Ctx::charge_ops(self, ops);
    }

    fn charge_mem(&mut self, bytes: u64) {
        Ctx::charge_mem(self, bytes);
    }

    fn cache_share_bytes(&self) -> u64 {
        let m = self.machine();
        (m.cache_bytes / m.pes_per_node) as u64
    }

    fn mem_alloc(&mut self, bytes: u64) {
        Ctx::mem_alloc(self, bytes);
    }

    fn mem_free(&mut self, bytes: u64) {
        Ctx::mem_free(self, bytes);
    }

    fn send_with_flows(
        &mut self,
        dst: PeId,
        tag: u32,
        payload: Vec<u8>,
        flows: Vec<(u32, FlowTag)>,
    ) {
        Ctx::send_with_flows(self, dst, tag, payload, flows);
    }

    fn poll(&mut self) -> Vec<Msg> {
        Ctx::poll(self)
    }

    fn metrics(&mut self) -> &mut MetricsRegistry {
        Ctx::metrics(self)
    }

    fn trace(&mut self, make: impl FnOnce() -> EventKind) {
        Ctx::trace(self, make);
    }
}
