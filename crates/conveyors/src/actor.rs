//! The L1 layer: HClib-Actor-style staging (paper §IV-B).
//!
//! The actor runtime buffers `C1` packets per PE before handing them to the
//! conveyor, "ensuring a seamless execution when the Conveyors buffers are
//! full and/or busy" — and hiding all conveyor API calls from the
//! application. [`Actor`] is that façade: applications only ever call
//! [`Actor::send`], [`Actor::progress`] and [`Actor::begin_drain`].

use dakc_sim::{EventKind, FlowTag, PeId};

use crate::conveyor::{ConvStats, Conveyor, ConveyorConfig};
use crate::fabric::Fabric;

/// Software cost of staging one packet in the L1 buffer, in integer ops.
pub const STAGE_ITEM_OPS: u64 = 16;

/// L1 configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ActorConfig {
    /// Packets staged before draining into the conveyor (Table III:
    /// `C1 = 1024`).
    pub c1_packets: usize,
    /// The underlying conveyor configuration.
    pub conveyor: ConveyorConfig,
}

impl ActorConfig {
    /// Table III defaults over the given conveyor config.
    pub fn paper_defaults(conveyor: ConveyorConfig) -> Self {
        Self {
            c1_packets: 1024,
            conveyor,
        }
    }
}

/// One staged packet: destination, channel, payload bytes (flat storage).
#[derive(Debug)]
struct Staged {
    dst: PeId,
    channel: u8,
    /// Offset range into the flat payload arena.
    start: usize,
    len: usize,
    /// Out-of-band causal tag when this packet's flow is sampled.
    flow: Option<FlowTag>,
}

/// The per-PE actor endpoint wrapping a [`Conveyor`].
#[derive(Debug)]
pub struct Actor {
    cfg: ActorConfig,
    conveyor: Conveyor,
    staged: Vec<Staged>,
    arena: Vec<u8>,
}

impl Actor {
    /// Creates the endpoint and registers L1 buffer memory.
    pub fn new<F: Fabric>(cfg: ActorConfig, ctx: &mut F) -> Self {
        let conveyor = Conveyor::new(cfg.conveyor.clone(), ctx);
        // L1 memory: C1 packets of the largest channel budget plus
        // bookkeeping (Table III charges 264 B per element).
        let max_payload = cfg
            .conveyor
            .channels
            .iter()
            .map(|k| k.budget_bytes())
            .max()
            .unwrap_or(0);
        ctx.mem_alloc((cfg.c1_packets * (max_payload + std::mem::size_of::<Staged>())) as u64);
        Self {
            cfg,
            conveyor,
            staged: Vec::new(),
            arena: Vec::new(),
        }
    }

    /// Queues one packet for `dst`; drains to the conveyor when `C1`
    /// packets are staged.
    pub fn send<F: Fabric>(&mut self, ctx: &mut F, dst: PeId, channel: u8, payload: &[u8]) {
        self.send_flow(ctx, dst, channel, payload, None);
    }

    /// Like [`Actor::send`], but attaches a causal flow tag that rides out
    /// of band through the conveyor to the remote drain.
    pub fn send_flow<F: Fabric>(
        &mut self,
        ctx: &mut F,
        dst: PeId,
        channel: u8,
        payload: &[u8],
        flow: Option<FlowTag>,
    ) {
        let start = self.arena.len();
        self.arena.extend_from_slice(payload);
        self.staged.push(Staged {
            dst,
            channel,
            start,
            len: payload.len(),
            flow,
        });
        // Staging cost: copy into the L1 arena plus bookkeeping.
        ctx.charge_ops(payload.len() as u64 / 8 + STAGE_ITEM_OPS);
        if self.staged.len() >= self.cfg.c1_packets {
            self.drain_l1(ctx);
        }
    }

    /// Moves all staged packets into the conveyor's L0 buffers.
    fn drain_l1<F: Fabric>(&mut self, ctx: &mut F) {
        let mut staged = std::mem::take(&mut self.staged);
        let arena = std::mem::take(&mut self.arena);
        let packets = staged.len() as u32;
        ctx.trace(|| EventKind::L1Drain { packets });
        let now = ctx.now();
        for s in &mut staged {
            if let Some(tag) = &mut s.flow {
                tag.t_l1_drain = now;
            }
            self.conveyor
                .push_flow(ctx, s.dst, s.channel, &arena[s.start..s.start + s.len], s.flow);
        }
    }

    /// Polls and processes arrivals (delivery + relaying), exactly like
    /// the actor runtime's background progress loop. `deliver` receives
    /// `(src, channel, payload)` — see [`Conveyor::progress`] for the
    /// relay caveat on `src`.
    pub fn progress<F: Fabric>(&mut self, ctx: &mut F, deliver: &mut dyn FnMut(PeId, u8, &[u8])) {
        self.conveyor.progress(ctx, deliver);
    }

    /// Drops every staged and conveyor-buffered record addressed to
    /// `dst`, returning how many were discarded. Recovery replay hook:
    /// see [`Conveyor::purge_dest`]. The arena bytes of purged staged
    /// packets are left in place (offsets of surviving packets must not
    /// move); they are reclaimed by the next L1 drain.
    pub fn purge_dest<F: Fabric>(&mut self, ctx: &mut F, dst: PeId) -> u64 {
        let before = self.staged.len();
        self.staged.retain(|s| s.dst != dst);
        let staged_dropped = (before - self.staged.len()) as u64;
        staged_dropped + self.conveyor.purge_dest(ctx, dst)
    }

    /// Flushes L1 and L0 and enters draining mode (call once the
    /// application has produced all its packets, before the global
    /// barrier).
    pub fn begin_drain<F: Fabric>(&mut self, ctx: &mut F) {
        self.drain_l1(ctx);
        self.conveyor.begin_drain(ctx);
    }

    /// Conveyor counters.
    pub fn conveyor_stats(&self) -> ConvStats {
        self.conveyor.stats()
    }

    /// The wrapped conveyor (for topology/memory queries).
    pub fn conveyor(&self) -> &Conveyor {
        &self.conveyor
    }

    /// Releases registered buffer memory.
    pub fn release<F: Fabric>(&mut self, ctx: &mut F) {
        let max_payload = self
            .cfg
            .conveyor
            .channels
            .iter()
            .map(|k| k.budget_bytes())
            .max()
            .unwrap_or(0);
        ctx.mem_free((self.cfg.c1_packets * (max_payload + std::mem::size_of::<Staged>())) as u64);
        self.conveyor.release(ctx);
    }
}
