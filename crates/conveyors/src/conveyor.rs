//! The L0 layer: per-neighbor buffered `PUT`s with routed delivery.
//!
//! Mirrors the Conveyors library (§IV-A): every `push` appends a record to
//! the send buffer of the packet's *next hop*; a full buffer is shipped as
//! one `PUT` through the simulator transport. Receivers parse arrived
//! buffers, delivering records addressed to them and re-buffering the rest
//! toward their next hop (2D/3D relaying).
//!
//! ## Wire format
//!
//! One `PUT` payload is a concatenation of records:
//!
//! ```text
//! 2D/3D:  [final_dst: u32 LE] [channel: u8] [payload: channel size]
//! 1D:                         [channel: u8] [payload: channel size]
//! ```
//!
//! The 32-bit final-destination header exists only under routed protocols
//! — it is exactly the per-packet overhead (§IV-C) that the application's
//! L2 layer amortizes by packing many k-mers into one record.

use dakc_sim::telemetry::metrics::{BYTES_BOUNDS, HOPS_BOUNDS, LATENCY_BOUNDS, PCT_BOUNDS};
use dakc_sim::{EventKind, FlowTag, Msg, PeId};

use crate::fabric::Fabric;
use crate::topo::{Protocol, Topology};

/// Message tag conveyors traffic uses on the simulator transport.
pub const CONVEYOR_TAG: u32 = 0xC0;

/// Software cost of pushing one record into an L0 buffer, in integer ops
/// (destination lookup, buffer check, flow control — the per-item work
/// whose *reduction* is why the paper's L2 packing pays off on uniform
/// data, §VI-G).
pub const PUSH_ITEM_OPS: u64 = 40;

/// Software cost of processing one received record.
pub const PROCESS_ITEM_OPS: u64 = 32;

/// One stage of the telescoping aggregation cascade a sampled flow
/// traverses (DESIGN.md §6): the per-stage residencies of a closed flow
/// sum exactly to its end-to-end latency, in this order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// L3 heavy-hitter buffer wait.
    L3,
    /// L2 packet pack wait.
    L2,
    /// L1 actor staging.
    L1,
    /// L0 `PUT` buffer wait.
    L0,
    /// On the wire (or in the simulated transport).
    Net,
    /// Receiver drain queue.
    Drain,
}

impl Stage {
    /// Every stage, in telescoping order — the canonical stage vocabulary
    /// shared by the flow metrics (`flow.stage_s.<name>`), the Chrome
    /// trace `flow_recv` args (`<name>_s`), and the trace analyzer.
    pub const ALL: [Stage; 6] = [Stage::L3, Stage::L2, Stage::L1, Stage::L0, Stage::Net, Stage::Drain];

    /// Stable lower-case name used in metric keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::L3 => "l3",
            Stage::L2 => "l2",
            Stage::L1 => "l1",
            Stage::L0 => "l0",
            Stage::Net => "net",
            Stage::Drain => "drain",
        }
    }
}

/// How a channel frames its records on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// Every record carries exactly this many payload bytes (no length
    /// framing needed).
    Fixed(usize),
    /// Records carry a 2-byte length prefix; payloads up to 64 KiB. Used
    /// by the L2 packed channels, whose final flush ships partial packets
    /// without padding.
    Variable,
}

impl ChannelKind {
    /// Planning size for buffer-memory accounting.
    pub fn budget_bytes(self) -> usize {
        match self {
            ChannelKind::Fixed(s) => s,
            ChannelKind::Variable => 256,
        }
    }
}

/// Static conveyor configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConveyorConfig {
    /// Routing protocol.
    pub protocol: Protocol,
    /// Capacity of one L0 send buffer in bytes; a buffer reaching it is
    /// `PUT` immediately. Table III's production value is 40 KiB; scaled
    /// experiments use smaller values so multiple flushes occur.
    pub c0_bytes: usize,
    /// Framing per channel id. Channel ids index this table.
    pub channels: Vec<ChannelKind>,
    /// Display names per channel id, used to key per-channel flow-latency
    /// metrics (e.g. `flow.e2e_s.normal`). Channels beyond this table fall
    /// back to `ch<N>`.
    pub channel_names: Vec<&'static str>,
}

impl ConveyorConfig {
    /// Table III production defaults (40 KiB L0 buffers).
    pub fn paper_defaults(protocol: Protocol, channels: Vec<ChannelKind>) -> Self {
        Self {
            protocol,
            c0_bytes: 40 * 1024,
            channels,
            channel_names: Vec::new(),
        }
    }
}

/// Conveyor-level counters (hop and item accounting for Table II/Fig 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvStats {
    /// Records pushed by the local application.
    pub items_pushed: u64,
    /// Records delivered to the local application.
    pub items_delivered: u64,
    /// Records relayed toward their final destination (2D/3D only).
    pub items_forwarded: u64,
    /// `PUT`s issued (buffer flushes).
    pub puts: u64,
    /// Application payload bytes pushed (headers excluded).
    pub payload_bytes_pushed: u64,
    /// Records dropped from local send buffers by
    /// [`Conveyor::purge_dest`] (rank-recovery replay: buffered records
    /// for a dead rank are discarded, then regenerated from input).
    pub items_purged: u64,
}

/// One L0 send buffer: wire bytes plus the out-of-band flow sidecar.
#[derive(Debug, Default)]
struct OutBuf {
    /// Wire bytes (what the `PUT` is charged for).
    bytes: Vec<u8>,
    /// Records appended so far (ordinals key the flow sidecar).
    records: u32,
    /// Causal tags for sampled records, by record ordinal. Never
    /// serialized: flow tracing must not change simulated time.
    flows: Vec<(u32, FlowTag)>,
}

/// One PE's conveyor endpoint.
#[derive(Debug)]
pub struct Conveyor {
    me: PeId,
    topo: Topology,
    cfg: ConveyorConfig,
    /// L0 send buffer per direct neighbor, lazily materialized.
    out: std::collections::HashMap<PeId, OutBuf>,
    draining: bool,
    stats: ConvStats,
    /// Per-record hop tallies (index = hops to final destination),
    /// accumulated locally so the hot push path stays a single array
    /// increment; folded into the metrics registry at drain time.
    hop_counts: [u64; 8],
}

impl Conveyor {
    /// Header bytes per record under this protocol.
    fn header_bytes(&self) -> usize {
        match self.cfg.protocol {
            Protocol::OneD => 0,
            Protocol::TwoD | Protocol::ThreeD => 4,
        }
    }

    /// Creates the endpoint for PE `me` of `p`, and registers the
    /// configured buffer memory with the simulator (Fig 2's protocol
    /// memory overhead).
    pub fn new<F: Fabric>(cfg: ConveyorConfig, ctx: &mut F) -> Self {
        let me = ctx.pe();
        let topo = Topology::new(cfg.protocol, ctx.num_pes());
        let conv = Self {
            me,
            topo,
            cfg,
            out: std::collections::HashMap::new(),
            draining: false,
            stats: ConvStats::default(),
            hop_counts: [0; 8],
        };
        ctx.mem_alloc(conv.configured_buffer_bytes());
        conv
    }

    /// Bytes of send-buffer capacity this PE is configured with:
    /// `out_degree × C0` (Table III's `40K × P^x`).
    pub fn configured_buffer_bytes(&self) -> u64 {
        self.topo.out_degree(self.me) as u64 * self.cfg.c0_bytes as u64
    }

    /// Counters so far.
    pub fn stats(&self) -> ConvStats {
        self.stats
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Queues one record for `final_dst` on `channel`.
    ///
    /// # Panics
    ///
    /// Panics if the payload violates the channel's framing (wrong size on
    /// a fixed channel, > 64 KiB on a variable one) or the channel id is
    /// unknown.
    pub fn push<F: Fabric>(&mut self, ctx: &mut F, final_dst: PeId, channel: u8, payload: &[u8]) {
        self.push_flow(ctx, final_dst, channel, payload, None);
    }

    /// Like [`Conveyor::push`], but attaches a causal flow tag to the
    /// record. The tag rides out of band (see [`OutBuf::flows`]) and is
    /// closed — per-stage residencies recorded — when the record is
    /// delivered at `final_dst`.
    pub fn push_flow<F: Fabric>(
        &mut self,
        ctx: &mut F,
        final_dst: PeId,
        channel: u8,
        payload: &[u8],
        flow: Option<FlowTag>,
    ) {
        match self.cfg.channels[channel as usize] {
            ChannelKind::Fixed(sz) => assert_eq!(
                payload.len(),
                sz,
                "channel {channel} payload size mismatch"
            ),
            ChannelKind::Variable => assert!(
                payload.len() <= u16::MAX as usize,
                "channel {channel} payload too large"
            ),
        }
        self.stats.items_pushed += 1;
        self.stats.payload_bytes_pushed += payload.len() as u64;
        let hops = self.topo.hops(self.me, final_dst).min(self.hop_counts.len() - 1);
        self.hop_counts[hops] += 1;
        self.enqueue(ctx, final_dst, channel, payload, flow);
    }

    /// Appends a record to the next hop's buffer, flushing if full.
    fn enqueue<F: Fabric>(
        &mut self,
        ctx: &mut F,
        final_dst: PeId,
        channel: u8,
        payload: &[u8],
        flow: Option<FlowTag>,
    ) {
        let hop = if final_dst == self.me {
            self.me
        } else {
            self.topo.next_hop(self.me, final_dst)
        };
        let hdr = self.header_bytes();
        let variable = matches!(self.cfg.channels[channel as usize], ChannelKind::Variable);
        let rec_len = hdr + 1 + if variable { 2 } else { 0 } + payload.len();
        // Buffer append cost: copy plus per-item bookkeeping.
        ctx.charge_ops(rec_len as u64 / 8 + PUSH_ITEM_OPS);

        let buf = self.out.entry(hop).or_default();
        if hdr > 0 {
            buf.bytes.extend_from_slice(&(final_dst as u32).to_le_bytes());
        }
        buf.bytes.push(channel);
        if variable {
            buf.bytes.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        }
        buf.bytes.extend_from_slice(payload);
        if let Some(tag) = flow {
            buf.flows.push((buf.records, tag));
        }
        buf.records += 1;
        if buf.bytes.len() >= self.cfg.c0_bytes {
            let full = self.out.remove(&hop).expect("just filled");
            self.stats.puts += 1;
            self.ship(ctx, hop, full);
        }
    }

    /// Ships one L0 buffer as a `PUT`, stamping the wire time on every
    /// flow tag riding with it (re-stamped per hop on relayed routes, so
    /// the in-flight stage measures the final hop).
    fn ship<F: Fabric>(&mut self, ctx: &mut F, hop: PeId, mut buf: OutBuf) {
        self.record_put(ctx, hop, buf.bytes.len());
        let now = ctx.now();
        for (_, tag) in &mut buf.flows {
            tag.t_l0_put = now;
        }
        ctx.send_with_flows(hop, CONVEYOR_TAG, buf.bytes, buf.flows);
    }

    /// Telemetry for one `PUT`: fill/size histograms and a trace event.
    fn record_put<F: Fabric>(&self, ctx: &mut F, hop: PeId, bytes: usize) {
        let fill_pct = ((bytes as u64 * 100) / self.cfg.c0_bytes.max(1) as u64).min(100) as u8;
        ctx.metrics().observe("l0.put_fill_pct", PCT_BOUNDS, fill_pct as f64);
        ctx.metrics().observe("l0.put_bytes", BYTES_BOUNDS, bytes as f64);
        ctx.trace(|| EventKind::PutFlush {
            hop: hop as u32,
            bytes: bytes as u32,
            fill_pct,
        });
    }

    /// Drops every locally buffered record whose *final destination* is
    /// `dst`, returning how many were discarded. The recovery replay hook:
    /// when a rank dies and is respawned, its un-shipped records are
    /// purged here and regenerated from the input instead (shipping them
    /// to the replacement would double-count the replayed keys). Under 1D
    /// the whole per-destination buffer is removed; under routed protocols
    /// the next-hop buffer is filtered record by record.
    pub fn purge_dest<F: Fabric>(&mut self, ctx: &mut F, dst: PeId) -> u64 {
        let hop = if dst == self.me { self.me } else { self.topo.next_hop(self.me, dst) };
        let Some(buf) = self.out.remove(&hop) else {
            return 0;
        };
        let dropped = if self.header_bytes() == 0 {
            // 1D: one buffer per final destination — drop it whole.
            buf.records as u64
        } else {
            let (kept, dropped) = self.filter_buffer(buf, dst);
            if kept.records > 0 {
                self.out.insert(hop, kept);
            }
            dropped
        };
        ctx.charge_ops(dropped);
        self.stats.items_purged += dropped;
        dropped
    }

    /// Re-encodes `buf` without the records addressed to `dst`, keeping
    /// the flow sidecar's ordinals consistent. Routed protocols only.
    fn filter_buffer(&self, buf: OutBuf, dst: PeId) -> (OutBuf, u64) {
        let bytes = &buf.bytes;
        let mut kept = OutBuf::default();
        let mut dropped = 0u64;
        let mut at = 0usize;
        let mut flow_at = 0usize;
        let mut ordinal = 0u32;
        while at < bytes.len() {
            let rec_start = at;
            let final_dst =
                u32::from_le_bytes(bytes[at..at + 4].try_into().expect("header")) as PeId;
            at += 4;
            let channel = bytes[at];
            at += 1;
            let size = match self.cfg.channels[channel as usize] {
                ChannelKind::Fixed(sz) => sz,
                ChannelKind::Variable => {
                    let len = u16::from_le_bytes(bytes[at..at + 2].try_into().expect("len prefix"));
                    at += 2;
                    len as usize
                }
            };
            at += size;
            let flow = match buf.flows.get(flow_at) {
                Some(&(ord, tag)) if ord == ordinal => {
                    flow_at += 1;
                    Some(tag)
                }
                _ => None,
            };
            ordinal += 1;
            if final_dst == dst {
                dropped += 1;
            } else {
                if let Some(tag) = flow {
                    kept.flows.push((kept.records, tag));
                }
                kept.bytes.extend_from_slice(&bytes[rec_start..at]);
                kept.records += 1;
            }
        }
        (kept, dropped)
    }

    /// Polls the transport and processes every arrived buffer: records for
    /// this PE are handed to `deliver(src, channel, payload)`; others are
    /// relayed. `src` is the transport-level sender of the carrying
    /// buffer — under 1D that is the record's producer; under routed
    /// protocols it is the last relay hop. In draining mode all partially
    /// filled buffers are flushed afterwards so quiescence can be reached.
    pub fn progress<F: Fabric>(&mut self, ctx: &mut F, deliver: &mut dyn FnMut(PeId, u8, &[u8])) {
        let msgs = ctx.poll();
        for msg in msgs {
            debug_assert_eq!(msg.tag, CONVEYOR_TAG);
            self.process_buffer(ctx, &msg, deliver);
        }
        if self.draining {
            self.flush_all(ctx);
        }
    }

    fn process_buffer<F: Fabric>(
        &mut self,
        ctx: &mut F,
        msg: &Msg,
        deliver: &mut dyn FnMut(PeId, u8, &[u8]),
    ) {
        let bytes = &msg.payload;
        let hdr = self.header_bytes();
        let mut at = 0usize;
        // Flow sidecar entries are ordinal-sorted (appended in push order).
        let mut flow_at = 0usize;
        let mut ordinal = 0u32;
        while at < bytes.len() {
            let final_dst = if hdr > 0 {
                let d = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("header"));
                at += 4;
                d as PeId
            } else {
                self.me
            };
            let channel = bytes[at];
            at += 1;
            let size = match self.cfg.channels[channel as usize] {
                ChannelKind::Fixed(sz) => sz,
                ChannelKind::Variable => {
                    let len =
                        u16::from_le_bytes(bytes[at..at + 2].try_into().expect("len prefix"));
                    at += 2;
                    len as usize
                }
            };
            let payload = &bytes[at..at + size];
            at += size;
            let flow = match msg.flows.get(flow_at) {
                Some(&(ord, tag)) if ord == ordinal => {
                    flow_at += 1;
                    Some(tag)
                }
                _ => None,
            };
            ordinal += 1;
            // Per-record processing cost.
            ctx.charge_ops(size as u64 / 8 + PROCESS_ITEM_OPS);
            if final_dst == self.me {
                self.stats.items_delivered += 1;
                if let Some(tag) = flow {
                    self.close_flow(ctx, msg.arrival, &tag);
                }
                deliver(msg.src, channel, payload);
            } else {
                self.stats.items_forwarded += 1;
                let payload = payload.to_vec();
                self.enqueue(ctx, final_dst, channel, &payload, flow);
            }
        }
    }

    /// Display name for `channel` in metric keys.
    fn channel_name(&self, channel: u8) -> String {
        match self.cfg.channel_names.get(channel as usize) {
            Some(name) => (*name).to_string(),
            None => format!("ch{channel}"),
        }
    }

    /// Closes a sampled flow at its final destination: computes per-stage
    /// residencies from the tag's hand-off timestamps, records them as
    /// latency histograms and emits the Chrome-trace flow-finish event.
    /// The residencies telescope — they sum to the end-to-end latency.
    fn close_flow<F: Fabric>(&self, ctx: &mut F, arrival: f64, tag: &FlowTag) {
        let now = ctx.now();
        let l3_s = tag.t_l2_open - tag.t_open;
        let l2_s = tag.t_l2_ship - tag.t_l2_open;
        let l1_s = tag.t_l1_drain - tag.t_l2_ship;
        let l0_s = tag.t_l0_put - tag.t_l1_drain;
        let net_s = arrival - tag.t_l0_put;
        let drain_s = now - arrival;
        let e2e_s = now - tag.t_open;
        let name = self.channel_name(tag.channel);
        let m = ctx.metrics();
        m.inc("flow.closed", 1);
        m.observe(&format!("flow.e2e_s.{name}"), LATENCY_BOUNDS, e2e_s);
        let residencies = [l3_s, l2_s, l1_s, l0_s, net_s, drain_s];
        for (stage, t) in Stage::ALL.iter().zip(residencies) {
            m.observe(&format!("flow.stage_s.{}", stage.name()), LATENCY_BOUNDS, t);
        }
        let (flow, channel, src) = (tag.flow, tag.channel, tag.src);
        ctx.trace(|| EventKind::FlowRecv {
            flow,
            channel,
            src,
            l3_s,
            l2_s,
            l1_s,
            l0_s,
            net_s,
            drain_s,
            e2e_s,
        });
    }

    /// Ships every nonempty buffer immediately, regardless of fill.
    pub fn flush_all<F: Fabric>(&mut self, ctx: &mut F) {
        // Deterministic flush order.
        let mut hops: Vec<PeId> = self
            .out
            .iter()
            .filter(|(_, b)| !b.bytes.is_empty())
            .map(|(&h, _)| h)
            .collect();
        hops.sort_unstable();
        for hop in hops {
            // Remove (not just clear) so idle buffers return their memory:
            // at 6K PEs the all-connected protocol would otherwise pin
            // O(P) empty vectors per PE on the host.
            let buf = self.out.remove(&hop).expect("listed");
            self.stats.puts += 1;
            self.ship(ctx, hop, buf);
        }
    }

    /// Enters draining mode (the application has produced everything) and
    /// flushes. While draining, every `progress` call auto-flushes relayed
    /// records so the global quiescent barrier can complete.
    pub fn begin_drain<F: Fabric>(&mut self, ctx: &mut F) {
        self.draining = true;
        self.fold_hop_metrics(ctx);
        self.flush_all(ctx);
    }

    /// Folds the locally accumulated hop tallies into the run's metrics
    /// registry and resets them.
    fn fold_hop_metrics<F: Fabric>(&mut self, ctx: &mut F) {
        for (hops, n) in self.hop_counts.iter_mut().enumerate() {
            ctx.metrics()
                .observe_n("conv.record_hops", HOPS_BOUNDS, hops as f64, *n);
            *n = 0;
        }
    }

    /// `true` once `begin_drain` was called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Releases the configured buffer memory (call when the communication
    /// epoch ends and the buffers are handed back).
    pub fn release<F: Fabric>(&mut self, ctx: &mut F) {
        self.fold_hop_metrics(ctx);
        ctx.mem_free(self.configured_buffer_bytes());
    }
}
