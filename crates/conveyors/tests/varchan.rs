//! Variable-length channel fuzzing: mixed fixed/variable channels with
//! arbitrary payload sizes must deliver exactly-once, in every protocol.

use std::cell::RefCell;
use std::rc::Rc;

use dakc_conveyors::{Actor, ActorConfig, ChannelKind, ConveyorConfig, Protocol};
use dakc_sim::{Ctx, MachineConfig, Program, Simulator, Step};

/// Deterministic per-PE item stream: (dst, channel, payload bytes).
fn items_for(pe: usize, p: usize, n: usize) -> Vec<(usize, u8, Vec<u8>)> {
    let mut x = 0xA076_1D64_78BD_642Fu64.wrapping_mul(pe as u64 + 1) | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..n)
        .map(|i| {
            let dst = (next() % p as u64) as usize;
            let chan = (next() % 2) as u8; // 0 = fixed(8), 1 = variable
            let payload = if chan == 0 {
                // Encode (pe, i) for exactly-once checking.
                (((pe as u64) << 32) | i as u64).to_le_bytes().to_vec()
            } else {
                let len = 1 + (next() % 57) as usize;
                let mut v = vec![0u8; len];
                v[0] = pe as u8;
                if len >= 3 {
                    v[1] = (i & 0xFF) as u8;
                    v[2] = ((i >> 8) & 0xFF) as u8;
                }
                v
            };
            (dst, chan, payload)
        })
        .collect()
}

type Sink = Rc<RefCell<Vec<(u8, Vec<u8>)>>>;

struct Fuzz {
    items: Vec<(usize, u8, Vec<u8>)>,
    cursor: usize,
    actor: Option<Actor>,
    cfg: ActorConfig,
    recv: Sink,
    drained: bool,
}

impl Program for Fuzz {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        if self.actor.is_none() {
            self.actor = Some(Actor::new(self.cfg.clone(), ctx));
            return Step::Yield;
        }
        let recv = self.recv.clone();
        let mut handler =
            |_src: dakc_sim::PeId, chan: u8, payload: &[u8]| recv.borrow_mut().push((chan, payload.to_vec()));
        let actor = self.actor.as_mut().expect("created");
        if !self.drained {
            let batch = 8.min(self.items.len() - self.cursor);
            for (dst, chan, payload) in &self.items[self.cursor..self.cursor + batch] {
                actor.send(ctx, *dst, *chan, payload);
            }
            self.cursor += batch;
            actor.progress(ctx, &mut handler);
            if self.cursor == self.items.len() {
                actor.begin_drain(ctx);
                self.drained = true;
                return Step::Barrier;
            }
            return Step::Yield;
        }
        let before = actor.conveyor_stats();
        actor.progress(ctx, &mut handler);
        let after = actor.conveyor_stats();
        if after.items_delivered + after.items_forwarded
            > before.items_delivered + before.items_forwarded
            || ctx.has_ready()
        {
            Step::Barrier
        } else {
            Step::Done
        }
    }
}

fn run_fuzz(protocol: Protocol, p: usize, per_pe: usize) {
    let sinks: Vec<Sink> = (0..p).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
    let cfg = ActorConfig {
        c1_packets: 16,
        conveyor: ConveyorConfig {
            protocol,
            c0_bytes: 160,
            channels: vec![ChannelKind::Fixed(8), ChannelKind::Variable],
            channel_names: Vec::new(),
        },
    };
    let programs: Vec<Box<dyn Program>> = (0..p)
        .map(|pe| {
            Box::new(Fuzz {
                items: items_for(pe, p, per_pe),
                cursor: 0,
                actor: None,
                cfg: cfg.clone(),
                recv: sinks[pe].clone(),
                drained: false,
            }) as Box<dyn Program>
        })
        .collect();
    Simulator::new(MachineConfig::test_machine(p, 1))
        .run(programs)
        .expect("sim ok");

    // Exactly-once, per destination, as multisets.
    let mut expected: Vec<Vec<(u8, Vec<u8>)>> = vec![Vec::new(); p];
    for pe in 0..p {
        for (dst, chan, payload) in items_for(pe, p, per_pe) {
            expected[dst].push((chan, payload));
        }
    }
    for pe in 0..p {
        let mut got = sinks[pe].borrow().clone();
        let mut want = expected[pe].clone();
        got.sort();
        want.sort();
        assert_eq!(got.len(), want.len(), "PE {pe} count mismatch ({protocol:?})");
        assert_eq!(got, want, "PE {pe} content mismatch ({protocol:?})");
    }
}

#[test]
fn mixed_channels_1d() {
    run_fuzz(Protocol::OneD, 5, 300);
}

#[test]
fn mixed_channels_2d() {
    run_fuzz(Protocol::TwoD, 9, 250);
}

#[test]
fn mixed_channels_3d() {
    run_fuzz(Protocol::ThreeD, 8, 250);
}

#[test]
fn mixed_channels_ragged_grids() {
    run_fuzz(Protocol::TwoD, 7, 150);
    run_fuzz(Protocol::ThreeD, 13, 150);
}

#[test]
fn large_variable_payloads_cross_buffer_boundary() {
    // Payloads close to C0 force a flush on nearly every push.
    let p = 3;
    let sinks: Vec<Sink> = (0..p).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
    let cfg = ActorConfig {
        c1_packets: 2,
        conveyor: ConveyorConfig {
            protocol: Protocol::OneD,
            c0_bytes: 64,
            channels: vec![ChannelKind::Fixed(8), ChannelKind::Variable],
            channel_names: Vec::new(),
        },
    };
    let items: Vec<(usize, u8, Vec<u8>)> =
        (0..50).map(|i| (i % p, 1u8, vec![i as u8; 60])).collect();
    let programs: Vec<Box<dyn Program>> = (0..p)
        .map(|pe| {
            Box::new(Fuzz {
                items: if pe == 0 { items.clone() } else { Vec::new() },
                cursor: 0,
                actor: None,
                cfg: cfg.clone(),
                recv: sinks[pe].clone(),
                drained: false,
            }) as Box<dyn Program>
        })
        .collect();
    Simulator::new(MachineConfig::test_machine(p, 1))
        .run(programs)
        .expect("sim ok");
    let total: usize = sinks.iter().map(|s| s.borrow().len()).sum();
    assert_eq!(total, 50);
}
