//! End-to-end conveyor tests inside the simulator: random all-to-all
//! scatters must deliver every record exactly once, under every protocol,
//! with the expected relaying and memory behaviour.

use std::cell::RefCell;
use std::rc::Rc;

use dakc_conveyors::{Actor, ActorConfig, ChannelKind, ConvStats, Conveyor, ConveyorConfig, Protocol};
use dakc_sim::{Ctx, MachineConfig, Program, Simulator, Step};

/// Shared result sinks, one per PE.
type Sink = Rc<RefCell<Vec<u64>>>;
type StatsSink = Rc<RefCell<Vec<ConvStats>>>;

enum Phase {
    Start,
    Sending,
    Draining,
}

struct Scatter {
    items: Vec<(usize, u64)>,
    cursor: usize,
    actor: Option<Actor>,
    received: Sink,
    stats_out: StatsSink,
    cfg: ActorConfig,
    phase: Phase,
}

impl Scatter {
    fn progress_once(&mut self, ctx: &mut Ctx<'_>) -> u64 {
        let actor = self.actor.as_mut().expect("created");
        let before = actor.conveyor_stats();
        let recv = self.received.clone();
        let mut handler = |_src: dakc_sim::PeId, _chan: u8, payload: &[u8]| {
            recv.borrow_mut()
                .push(u64::from_le_bytes(payload.try_into().expect("8B")));
        };
        actor.progress(ctx, &mut handler);
        let after = actor.conveyor_stats();
        (after.items_delivered - before.items_delivered)
            + (after.items_forwarded - before.items_forwarded)
    }
}

impl Program for Scatter {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        match self.phase {
            Phase::Start => {
                self.actor = Some(Actor::new(self.cfg.clone(), ctx));
                self.phase = Phase::Sending;
                Step::Yield
            }
            Phase::Sending => {
                let batch = 16.min(self.items.len() - self.cursor);
                for i in 0..batch {
                    let (dst, val) = self.items[self.cursor + i];
                    self.actor.as_mut().expect("created").send(
                        ctx,
                        dst,
                        0,
                        &val.to_le_bytes(),
                    );
                }
                self.cursor += batch;
                self.progress_once(ctx);
                if self.cursor == self.items.len() {
                    self.actor.as_mut().expect("created").begin_drain(ctx);
                    self.phase = Phase::Draining;
                    Step::Barrier
                } else {
                    Step::Yield
                }
            }
            Phase::Draining => {
                let processed = self.progress_once(ctx);
                if processed > 0 || ctx.has_ready() {
                    Step::Barrier
                } else {
                    // Barrier completed and nothing new arrived: done.
                    self.stats_out
                        .borrow_mut()
                        .push(self.actor.as_ref().expect("created").conveyor_stats());
                    Step::Done
                }
            }
        }
    }
}

/// Deterministic pseudo-random items for PE `pe`.
fn items_for(pe: usize, p: usize, n: usize) -> Vec<(usize, u64)> {
    let mut x = 0x9E37_79B9u64.wrapping_mul(pe as u64 + 1) | 1;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let dst = (x % p as u64) as usize;
            // Value encodes (src, index) so exactly-once is checkable.
            (dst, ((pe as u64) << 32) | i as u64)
        })
        .collect()
}

fn run_scatter(
    protocol: Protocol,
    p: usize,
    per_pe: usize,
    c0: usize,
    c1: usize,
) -> (Vec<Vec<u64>>, Vec<ConvStats>, dakc_sim::SimReport) {
    let machine = MachineConfig::test_machine(p, 1);
    let sinks: Vec<Sink> = (0..p).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
    let stats: StatsSink = Rc::new(RefCell::new(Vec::new()));
    let cfg = ActorConfig {
        c1_packets: c1,
        conveyor: ConveyorConfig {
            protocol,
            c0_bytes: c0,
            channels: vec![ChannelKind::Fixed(8)],
            channel_names: Vec::new(),
        },
    };
    let programs: Vec<Box<dyn Program>> = (0..p)
        .map(|pe| {
            Box::new(Scatter {
                items: items_for(pe, p, per_pe),
                cursor: 0,
                actor: None,
                received: sinks[pe].clone(),
                stats_out: stats.clone(),
                cfg: cfg.clone(),
                phase: Phase::Start,
            }) as Box<dyn Program>
        })
        .collect();
    let report = Simulator::new(machine).run(programs).expect("sim ok");
    let received = sinks.iter().map(|s| s.borrow().clone()).collect();
    let stats = stats.borrow().clone();
    (received, stats, report)
}

fn assert_exactly_once(received: &[Vec<u64>], p: usize, per_pe: usize) {
    // Rebuild the expected multiset per destination.
    let mut expected: Vec<Vec<u64>> = vec![Vec::new(); p];
    for pe in 0..p {
        for (dst, val) in items_for(pe, p, per_pe) {
            expected[dst].push(val);
        }
    }
    for pe in 0..p {
        let mut got = received[pe].clone();
        let mut want = expected[pe].clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "PE {pe} delivery mismatch");
    }
}

#[test]
fn one_d_delivers_exactly_once() {
    let (recv, stats, _) = run_scatter(Protocol::OneD, 7, 500, 256, 32);
    assert_exactly_once(&recv, 7, 500);
    // 1D never forwards.
    assert!(stats.iter().all(|s| s.items_forwarded == 0));
}

#[test]
fn two_d_delivers_exactly_once_and_relays() {
    let (recv, stats, _) = run_scatter(Protocol::TwoD, 9, 400, 128, 16);
    assert_exactly_once(&recv, 9, 400);
    let forwarded: u64 = stats.iter().map(|s| s.items_forwarded).sum();
    assert!(forwarded > 0, "2D must relay off-row/column records");
}

#[test]
fn three_d_delivers_exactly_once_and_relays() {
    let (recv, stats, _) = run_scatter(Protocol::ThreeD, 27, 300, 128, 16);
    assert_exactly_once(&recv, 27, 300);
    let forwarded: u64 = stats.iter().map(|s| s.items_forwarded).sum();
    assert!(forwarded > 0, "3D must relay");
}

#[test]
fn ragged_grids_still_deliver() {
    for (proto, p) in [
        (Protocol::TwoD, 11),
        (Protocol::TwoD, 14),
        (Protocol::ThreeD, 10),
        (Protocol::ThreeD, 30),
    ] {
        let (recv, _, _) = run_scatter(proto, p, 200, 96, 8);
        assert_exactly_once(&recv, p, 200);
    }
}

#[test]
fn tiny_buffers_force_many_puts() {
    let (recv, stats, _) = run_scatter(Protocol::OneD, 4, 300, 32, 4);
    assert_exactly_once(&recv, 4, 300);
    let puts: u64 = stats.iter().map(|s| s.puts).sum();
    assert!(puts > 50, "tiny C0 must flush often, saw {puts}");
}

#[test]
fn single_pe_loopback() {
    let (recv, _, _) = run_scatter(Protocol::OneD, 1, 100, 64, 8);
    assert_exactly_once(&recv, 1, 100);
}

#[test]
fn protocol_memory_ordering_matches_table_ii() {
    // Configured L0 memory must decrease 1D > 2D > 3D at fixed P.
    let p = 64;
    let mem = |proto: Protocol| {
        let (_, stats, report) = run_scatter(proto, p, 50, 4096, 8);
        assert_eq!(stats.len(), p);
        // Node peaks include the configured buffers; compare reports.
        report.peak_node_memory()
    };
    let m1 = mem(Protocol::OneD);
    let m2 = mem(Protocol::TwoD);
    let m3 = mem(Protocol::ThreeD);
    assert!(m1 > m2, "1D {m1} !> 2D {m2}");
    assert!(m2 > m3, "2D {m2} !> 3D {m3}");
}

#[test]
fn routed_protocols_cost_more_wire_bytes_per_item() {
    // The 32-bit header inflates 2D traffic relative to 1D for the same
    // items — the exact overhead §IV-C describes.
    let (_, _, r1) = run_scatter(Protocol::OneD, 9, 400, 128, 16);
    let (_, _, r2) = run_scatter(Protocol::TwoD, 9, 400, 128, 16);
    let b1 = r1.remote_bytes();
    let b2 = r2.remote_bytes();
    assert!(
        b2 as f64 > b1 as f64 * 1.2,
        "2D bytes {b2} should exceed 1D bytes {b1} by the header + relays"
    );
}

#[test]
fn determinism_bitwise_identical_reports() {
    let (_, _, ra) = run_scatter(Protocol::TwoD, 9, 200, 128, 16);
    let (_, _, rb) = run_scatter(Protocol::TwoD, 9, 200, 128, 16);
    assert_eq!(ra.total_time.to_bits(), rb.total_time.to_bits());
    assert_eq!(ra.pes, rb.pes);
}

#[test]
fn conveyor_without_actor_layer_works() {
    // Drive the raw conveyor directly (no L1) for one PE pair.
    struct Raw {
        conv: Option<Conveyor>,
        sent: bool,
        got: Rc<RefCell<Vec<u64>>>,
    }
    impl Program for Raw {
        fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
            if self.conv.is_none() {
                self.conv = Some(Conveyor::new(
                    ConveyorConfig {
                        protocol: Protocol::OneD,
                        c0_bytes: 64,
                        channels: vec![ChannelKind::Fixed(8)],
                        channel_names: Vec::new(),
                    },
                    ctx,
                ));
                return Step::Yield;
            }
            let conv = self.conv.as_mut().expect("set");
            if !self.sent {
                if ctx.pe() == 0 {
                    for v in 0..10u64 {
                        conv.push(ctx, 1, 0, &v.to_le_bytes());
                    }
                }
                conv.begin_drain(ctx);
                self.sent = true;
                return Step::Barrier;
            }
            let got = self.got.clone();
            let mut h = |_src: dakc_sim::PeId, _c: u8, p: &[u8]| {
                got.borrow_mut().push(u64::from_le_bytes(p.try_into().expect("8B")));
            };
            let before = conv.stats().items_delivered;
            conv.progress(ctx, &mut h);
            if conv.stats().items_delivered > before || ctx.has_ready() {
                Step::Barrier
            } else {
                Step::Done
            }
        }
    }
    let machine = MachineConfig::test_machine(2, 1);
    let sink: Sink = Rc::new(RefCell::new(Vec::new()));
    let programs: Vec<Box<dyn Program>> = (0..2)
        .map(|_| {
            Box::new(Raw {
                conv: None,
                sent: false,
                got: sink.clone(),
            }) as Box<dyn Program>
        })
        .collect();
    Simulator::new(machine).run(programs).expect("ok");
    let mut got = sink.borrow().clone();
    got.sort_unstable();
    assert_eq!(got, (0..10).collect::<Vec<u64>>());
}
