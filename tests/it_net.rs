//! Distributed-runtime integration tests: the real-transport engine
//! (`dakc-net` under the Conveyor L0) must be bit-identical to the serial
//! baseline over both backends, terminate without deadlock in the
//! degenerate topologies, and round-trip every wire format.

use dakc::{count_kmers_loopback, decode_packet, encode_heavy_packet, encode_normal_packet,
    run_rank, DakcConfig, NetRun, ReceiveStore};
use dakc_baselines::count_kmers_serial;
use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSet, ReadSimConfig, RepeatProfile};
use dakc_kmer::{CanonicalMode, KmerCount, KmerWord};
use dakc_net::{FrameDecoder, FrameKind, TcpTransport};
use dakc_sort::RadixKey;
use proptest::prelude::*;

const CH_NORMAL: u8 = 0;
const CH_HEAVY: u8 = 1;

fn workload(seed: u64) -> ReadSet {
    let genome = generate_genome(
        &GenomeSpec { bases: 5_000, repeats: Some(RepeatProfile::aatgg(0.12)) },
        seed,
    );
    simulate_reads(
        &genome,
        &ReadSimConfig { read_len: 100, num_reads: 300, error_rate: 0.01, both_strands: false },
        seed,
    )
}

fn reference<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    mode: CanonicalMode,
) -> Vec<KmerCount<W>> {
    count_kmers_serial::<W>(reads, k, mode, false).counts
}

/// Runs the distributed engine over an in-process TCP mesh: one thread
/// per rank, rendezvous through a unique temp dir, real sockets on
/// localhost.
fn count_kmers_tcp_threads<W: KmerWord + RadixKey + Send>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    ranks: usize,
    tag: &str,
) -> NetRun<W> {
    let dir = std::env::temp_dir().join(format!("dakc-it-net-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = std::thread::scope(|s| {
        let handles: Vec<_> = (0..ranks)
            .map(|rank| {
                let dir = dir.clone();
                s.spawn(move || {
                    let t = TcpTransport::rendezvous(rank, ranks, &dir, cfg.c0_bytes).unwrap();
                    run_rank::<W, _>(reads, cfg, t)
                })
            })
            .collect();
        let mut out = None;
        for h in handles {
            if let Some(r) = h.join().expect("rank thread panicked") {
                out = Some(r);
            }
        }
        out.expect("rank 0 result")
    });
    let _ = std::fs::remove_dir_all(&dir);
    run
}

#[test]
fn loopback_matches_serial_across_ranks_and_modes() {
    let reads = workload(11);
    for k in [15, 31] {
        for mode in [CanonicalMode::Forward, CanonicalMode::Canonical] {
            let mut cfg = DakcConfig::scaled_defaults(k);
            cfg.canonical = mode;
            let want = reference::<u64>(&reads, k, mode);
            for ranks in [1, 2, 4, 7] {
                let run = count_kmers_loopback::<u64>(&reads, &cfg, ranks);
                assert_eq!(run.counts, want, "k={k} mode={mode:?} ranks={ranks}");
            }
        }
    }
}

#[test]
fn loopback_matches_serial_with_l3_enabled() {
    let reads = workload(12);
    let cfg = DakcConfig::scaled_defaults(21).with_l3();
    let want = reference::<u64>(&reads, 21, cfg.canonical);
    for ranks in [2, 5] {
        let run = count_kmers_loopback::<u64>(&reads, &cfg, ranks);
        assert_eq!(run.counts, want, "l3 ranks={ranks}");
    }
}

#[test]
fn loopback_matches_serial_for_kmer128() {
    let reads = workload(13);
    let k = 33;
    let cfg = DakcConfig::scaled_defaults(k);
    let want = reference::<u128>(&reads, k, cfg.canonical);
    for ranks in [1, 3] {
        let run = count_kmers_loopback::<u128>(&reads, &cfg, ranks);
        assert_eq!(run.counts, want, "u128 ranks={ranks}");
    }
}

#[test]
fn tcp_matches_serial() {
    let reads = workload(14);
    let cfg = DakcConfig::scaled_defaults(19).with_l3();
    let want = reference::<u64>(&reads, 19, cfg.canonical);
    let run = count_kmers_tcp_threads::<u64>(&reads, &cfg, 4, "agree");
    assert_eq!(run.counts, want);
    assert!(run.metrics.counter("net.frames_sent") > 0);
    assert_eq!(run.metrics.counter("net.ranks"), 4);
}

// Regression: ranks=1 has no remote peers — every send is a self-
// delivery and the termination protocol must still converge (two
// confirming rounds on (0, 0) deltas), in both backends.
#[test]
fn single_rank_terminates_loopback_and_tcp() {
    let reads = workload(15);
    let cfg = DakcConfig::scaled_defaults(17);
    let want = reference::<u64>(&reads, 17, cfg.canonical);
    let loop_run = count_kmers_loopback::<u64>(&reads, &cfg, 1);
    assert_eq!(loop_run.counts, want, "loopback ranks=1");
    let tcp_run = count_kmers_tcp_threads::<u64>(&reads, &cfg, 1, "single");
    assert_eq!(tcp_run.counts, want, "tcp ranks=1");
}

// Regression: more ranks than reads leaves some ranks with an empty
// read slice. They flush nothing, contribute (0, 0) to every
// termination round, and must neither deadlock the collective nor
// corrupt the histogram.
#[test]
fn zero_input_ranks_terminate_loopback_and_tcp() {
    let mut reads = ReadSet::new();
    reads.push(b"ACGTACGTAACCGGTTACGTACGT");
    reads.push(b"TTTTTTTTTTTTTTTTTTTT");
    let cfg = DakcConfig::scaled_defaults(9);
    let want = reference::<u64>(&reads, 9, cfg.canonical);
    let ranks = 6; // > number of reads / 2: ranks 2.. get empty slices
    let loop_run = count_kmers_loopback::<u64>(&reads, &cfg, ranks);
    assert_eq!(loop_run.counts, want, "loopback zero-input ranks");
    let tcp_run = count_kmers_tcp_threads::<u64>(&reads, &cfg, ranks, "zeroin");
    assert_eq!(tcp_run.counts, want, "tcp zero-input ranks");
}

// ---------------------------------------------------------------------
// Wire-format round-trips (satellite: L2 packets and HEAVY pairs over
// the framed transport, fuzzing lengths and split reads).
// ---------------------------------------------------------------------

/// Pushes `wire` through a [`FrameDecoder`] in chunks drawn from
/// `splits`, returning every decoded data payload.
fn decode_split(wire: &[u8], splits: &[usize]) -> Vec<Vec<u8>> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut at = 0;
    let mut si = 0;
    while at < wire.len() {
        let step = splits[si % splits.len()].min(wire.len() - at);
        si += 1;
        dec.feed(&wire[at..at + step]);
        at += step;
        while let Some((kind, payload)) = dec.next_frame().unwrap() {
            assert_eq!(kind, FrameKind::Data);
            out.push(payload);
        }
    }
    assert_eq!(dec.pending_bytes(), 0);
    out
}

proptest! {
    // NORMAL packets (one k-mer word per record) survive framing with
    // arbitrary read splits, for both word widths.
    #[test]
    fn normal_packet_roundtrip_u64(
        words in prop::collection::vec(any::<u64>(), 1..200),
        splits in prop::collection::vec(1usize..61, 1..20),
    ) {
        let word_bytes = 8;
        let payload = encode_normal_packet(&words, word_bytes);
        let wire = dakc_net::encode_frame(FrameKind::Data, &payload);
        let payloads = decode_split(&wire, &splits);
        prop_assert_eq!(payloads.len(), 1);
        let mut store = ReceiveStore::<u64>::default();
        decode_packet(CH_NORMAL, &payloads[0], word_bytes, &mut store);
        prop_assert_eq!(store.plain, words);
        prop_assert!(store.pairs.is_empty());
    }

    // HEAVY `{kmer, count}` pairs round-trip for Kmer128 words (k > 32:
    // 16-byte words, the full 128-bit range).
    #[test]
    fn heavy_packet_roundtrip_u128(
        pairs in prop::collection::vec((any::<u128>(), 1u32..u32::MAX), 1..120),
        splits in prop::collection::vec(1usize..97, 1..20),
    ) {
        let word_bytes = 16;
        let payload = encode_heavy_packet(&pairs, word_bytes);
        let wire = dakc_net::encode_frame(FrameKind::Data, &payload);
        let payloads = decode_split(&wire, &splits);
        prop_assert_eq!(payloads.len(), 1);
        let mut store = ReceiveStore::<u128>::default();
        decode_packet(CH_HEAVY, &payloads[0], word_bytes, &mut store);
        prop_assert_eq!(store.pairs, pairs);
        prop_assert!(store.plain.is_empty());
    }

    // Truncated word widths (k ≤ 32 ships 8-byte words even for u128
    // stores in the 9..=16 byte regime): width used on encode must
    // reproduce exactly on decode.
    #[test]
    fn heavy_packet_roundtrip_narrow_width(
        pairs in prop::collection::vec((any::<u64>(), 1u32..1000), 1..80),
        width in 5usize..=8,
    ) {
        let mask = if width == 8 { u64::MAX } else { (1u64 << (width * 8)) - 1 };
        let pairs: Vec<(u64, u32)> = pairs.into_iter().map(|(w, c)| (w & mask, c)).collect();
        let payload = encode_heavy_packet(&pairs, width);
        prop_assert_eq!(payload.len(), pairs.len() * (width + 4));
        let mut store = ReceiveStore::<u64>::default();
        decode_packet(CH_HEAVY, &payload, width, &mut store);
        prop_assert_eq!(store.pairs, pairs);
    }

    // A mixed stream of NORMAL and HEAVY packets over one framed
    // connection: every frame decodes on its announced channel.
    #[test]
    fn mixed_channel_stream_roundtrip(
        packets in prop::collection::vec(
            prop::collection::vec((any::<u64>(), 1u32..500), 1..40),
            1..12,
        ),
        heavy_mask in any::<u16>(),
        splits in prop::collection::vec(1usize..53, 1..16),
    ) {
        let word_bytes = 8;
        let mut wire = Vec::new();
        let mut want = ReceiveStore::<u64>::default();
        for (i, pkt) in packets.iter().enumerate() {
            if heavy_mask & (1 << (i as u16 % 16)) != 0 {
                let payload = encode_heavy_packet(pkt, word_bytes);
                wire.push((CH_HEAVY, payload));
                want.pairs.extend_from_slice(pkt);
            } else {
                let words: Vec<u64> = pkt.iter().map(|&(w, _)| w).collect();
                let payload = encode_normal_packet(&words, word_bytes);
                wire.push((CH_NORMAL, payload));
                want.plain.extend(words);
            }
        }
        // Prefix each payload with its channel byte, as one data frame.
        let mut bytes = Vec::new();
        for (ch, payload) in &wire {
            let mut tagged = vec![*ch];
            tagged.extend_from_slice(payload);
            bytes.extend_from_slice(&dakc_net::encode_frame(FrameKind::Data, &tagged));
        }
        let mut store = ReceiveStore::<u64>::default();
        for payload in decode_split(&bytes, &splits) {
            decode_packet(payload[0], &payload[1..], word_bytes, &mut store);
        }
        prop_assert_eq!(store.plain, want.plain);
        prop_assert_eq!(store.pairs, want.pairs);
    }
}
