//! Distributed-runtime integration tests: the real-transport engine
//! (`dakc-net` under the Conveyor L0) must be bit-identical to the serial
//! baseline over both backends, terminate without deadlock in the
//! degenerate topologies, and round-trip every wire format.

use dakc::{count_kmers_loopback, decode_packet, encode_heavy_packet, encode_normal_packet,
    run_rank, run_rank_opts, DakcConfig, NetRun, ReceiveStore, RunOpts};
use dakc_baselines::count_kmers_serial;
use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSet, ReadSimConfig, RepeatProfile};
use dakc_kmer::{CanonicalMode, KmerCount, KmerWord};
use dakc_net::{
    ChaosConfig, ChaosTransport, FrameDecoder, FrameError, FrameKind, Loopback, NetError,
    NetResult, NetTuning, TcpTransport,
};
use dakc_sort::RadixKey;
use proptest::prelude::*;
use std::time::Duration;

const CH_NORMAL: u8 = 0;
const CH_HEAVY: u8 = 1;

fn workload(seed: u64) -> ReadSet {
    let genome = generate_genome(
        &GenomeSpec { bases: 5_000, repeats: Some(RepeatProfile::aatgg(0.12)) },
        seed,
    );
    simulate_reads(
        &genome,
        &ReadSimConfig { read_len: 100, num_reads: 300, error_rate: 0.01, both_strands: false },
        seed,
    )
}

fn reference<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    mode: CanonicalMode,
) -> Vec<KmerCount<W>> {
    count_kmers_serial::<W>(reads, k, mode, false).counts
}

/// Runs the distributed engine over an in-process TCP mesh: one thread
/// per rank, rendezvous through a unique temp dir, real sockets on
/// localhost.
fn count_kmers_tcp_threads<W: KmerWord + RadixKey + Send>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    ranks: usize,
    tag: &str,
) -> NetRun<W> {
    let dir = std::env::temp_dir().join(format!("dakc-it-net-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = std::thread::scope(|s| {
        let handles: Vec<_> = (0..ranks)
            .map(|rank| {
                let dir = dir.clone();
                s.spawn(move || {
                    let t = TcpTransport::rendezvous(rank, ranks, &dir, cfg.c0_bytes).unwrap();
                    run_rank::<W, _>(reads, cfg, t).unwrap()
                })
            })
            .collect();
        let mut out = None;
        for h in handles {
            if let Some(r) = h.join().expect("rank thread panicked") {
                out = Some(r);
            }
        }
        out.expect("rank 0 result")
    });
    let _ = std::fs::remove_dir_all(&dir);
    run
}

/// Runs the distributed engine with every rank's transport wrapped in a
/// [`ChaosTransport`] — over an in-process TCP mesh when `tcp` is set,
/// else a loopback mesh — returning each rank's verdict (no unwrap: the
/// fault-injection tests assert on the errors).
#[allow(clippy::too_many_arguments)]
fn run_ranks_chaos<W: KmerWord + RadixKey + Send>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    ranks: usize,
    tag: &str,
    profile: Option<&str>,
    seed: u64,
    tuning: NetTuning,
    tcp: bool,
) -> Vec<NetResult<Option<NetRun<W>>>> {
    let chaos_for = |rank: usize| match profile {
        Some(p) => ChaosConfig::parse(p, seed, rank).expect("chaos profile"),
        None => ChaosConfig::off(),
    };
    let dir = std::env::temp_dir().join(format!("dakc-it-chaos-{}-{tag}", std::process::id()));
    if tcp {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut loop_mesh: Vec<Option<Loopback>> = if tcp {
        (0..ranks).map(|_| None).collect()
    } else {
        Loopback::mesh_tuned(ranks, tuning.clone()).into_iter().map(Some).collect()
    };
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = loop_mesh
            .iter_mut()
            .enumerate()
            .map(|(rank, slot)| {
                let dir = dir.clone();
                let tuning = tuning.clone();
                let chaos = chaos_for(rank);
                let slot = slot.take();
                s.spawn(move || {
                    let opts = RunOpts { tuning: tuning.clone(), ..RunOpts::default() };
                    match slot {
                        Some(lo) => run_rank_opts::<W, _>(
                            reads,
                            cfg,
                            ChaosTransport::new(lo, chaos),
                            &opts,
                        ),
                        None => {
                            let t = TcpTransport::rendezvous_tuned(
                                rank, ranks, &dir, cfg.c0_bytes, tuning,
                            )?;
                            run_rank_opts::<W, _>(reads, cfg, ChaosTransport::new(t, chaos), &opts)
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    });
    if tcp {
        let _ = std::fs::remove_dir_all(&dir);
    }
    results
}

#[test]
fn loopback_matches_serial_across_ranks_and_modes() {
    let reads = workload(11);
    for k in [15, 31] {
        for mode in [CanonicalMode::Forward, CanonicalMode::Canonical] {
            let mut cfg = DakcConfig::scaled_defaults(k);
            cfg.canonical = mode;
            let want = reference::<u64>(&reads, k, mode);
            for ranks in [1, 2, 4, 7] {
                let run = count_kmers_loopback::<u64>(&reads, &cfg, ranks).unwrap();
                assert_eq!(run.counts, want, "k={k} mode={mode:?} ranks={ranks}");
            }
        }
    }
}

#[test]
fn loopback_matches_serial_with_l3_enabled() {
    let reads = workload(12);
    let cfg = DakcConfig::scaled_defaults(21).with_l3();
    let want = reference::<u64>(&reads, 21, cfg.canonical);
    for ranks in [2, 5] {
        let run = count_kmers_loopback::<u64>(&reads, &cfg, ranks).unwrap();
        assert_eq!(run.counts, want, "l3 ranks={ranks}");
    }
}

#[test]
fn loopback_matches_serial_for_kmer128() {
    let reads = workload(13);
    let k = 33;
    let cfg = DakcConfig::scaled_defaults(k);
    let want = reference::<u128>(&reads, k, cfg.canonical);
    for ranks in [1, 3] {
        let run = count_kmers_loopback::<u128>(&reads, &cfg, ranks).unwrap();
        assert_eq!(run.counts, want, "u128 ranks={ranks}");
    }
}

#[test]
fn tcp_matches_serial() {
    let reads = workload(14);
    let cfg = DakcConfig::scaled_defaults(19).with_l3();
    let want = reference::<u64>(&reads, 19, cfg.canonical);
    let run = count_kmers_tcp_threads::<u64>(&reads, &cfg, 4, "agree");
    assert_eq!(run.counts, want);
    assert!(run.metrics.counter("net.frames_sent") > 0);
    assert_eq!(run.metrics.counter("net.ranks"), 4);
}

// Regression: ranks=1 has no remote peers — every send is a self-
// delivery and the termination protocol must still converge (two
// confirming rounds on (0, 0) deltas), in both backends.
#[test]
fn single_rank_terminates_loopback_and_tcp() {
    let reads = workload(15);
    let cfg = DakcConfig::scaled_defaults(17);
    let want = reference::<u64>(&reads, 17, cfg.canonical);
    let loop_run = count_kmers_loopback::<u64>(&reads, &cfg, 1).unwrap();
    assert_eq!(loop_run.counts, want, "loopback ranks=1");
    let tcp_run = count_kmers_tcp_threads::<u64>(&reads, &cfg, 1, "single");
    assert_eq!(tcp_run.counts, want, "tcp ranks=1");
}

// Regression: more ranks than reads leaves some ranks with an empty
// read slice. They flush nothing, contribute (0, 0) to every
// termination round, and must neither deadlock the collective nor
// corrupt the histogram.
#[test]
fn zero_input_ranks_terminate_loopback_and_tcp() {
    let mut reads = ReadSet::new();
    reads.push(b"ACGTACGTAACCGGTTACGTACGT");
    reads.push(b"TTTTTTTTTTTTTTTTTTTT");
    let cfg = DakcConfig::scaled_defaults(9);
    let want = reference::<u64>(&reads, 9, cfg.canonical);
    let ranks = 6; // > number of reads / 2: ranks 2.. get empty slices
    let loop_run = count_kmers_loopback::<u64>(&reads, &cfg, ranks).unwrap();
    assert_eq!(loop_run.counts, want, "loopback zero-input ranks");
    let tcp_run = count_kmers_tcp_threads::<u64>(&reads, &cfg, ranks, "zeroin");
    assert_eq!(tcp_run.counts, want, "tcp zero-input ranks");
}

// ---------------------------------------------------------------------
// Wire-format round-trips (satellite: L2 packets and HEAVY pairs over
// the framed transport, fuzzing lengths and split reads).
// ---------------------------------------------------------------------

/// Pushes `wire` through a [`FrameDecoder`] in chunks drawn from
/// `splits`, returning every decoded data payload.
fn decode_split(wire: &[u8], splits: &[usize]) -> Vec<Vec<u8>> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut at = 0;
    let mut si = 0;
    while at < wire.len() {
        let step = splits[si % splits.len()].min(wire.len() - at);
        si += 1;
        dec.feed(&wire[at..at + step]);
        at += step;
        while let Some((kind, payload)) = dec.next_frame().unwrap() {
            assert_eq!(kind, FrameKind::Data);
            out.push(payload);
        }
    }
    assert_eq!(dec.pending_bytes(), 0);
    out
}

proptest! {
    // NORMAL packets (one k-mer word per record) survive framing with
    // arbitrary read splits, for both word widths.
    #[test]
    fn normal_packet_roundtrip_u64(
        words in prop::collection::vec(any::<u64>(), 1..200),
        splits in prop::collection::vec(1usize..61, 1..20),
    ) {
        let word_bytes = 8;
        let payload = encode_normal_packet(&words, word_bytes);
        let wire = dakc_net::encode_frame(FrameKind::Data, &payload);
        let payloads = decode_split(&wire, &splits);
        prop_assert_eq!(payloads.len(), 1);
        let mut store = ReceiveStore::<u64>::default();
        decode_packet(CH_NORMAL, &payloads[0], word_bytes, &mut store);
        prop_assert_eq!(store.plain, words);
        prop_assert!(store.pairs.is_empty());
    }

    // HEAVY `{kmer, count}` pairs round-trip for Kmer128 words (k > 32:
    // 16-byte words, the full 128-bit range).
    #[test]
    fn heavy_packet_roundtrip_u128(
        pairs in prop::collection::vec((any::<u128>(), 1u32..u32::MAX), 1..120),
        splits in prop::collection::vec(1usize..97, 1..20),
    ) {
        let word_bytes = 16;
        let payload = encode_heavy_packet(&pairs, word_bytes);
        let wire = dakc_net::encode_frame(FrameKind::Data, &payload);
        let payloads = decode_split(&wire, &splits);
        prop_assert_eq!(payloads.len(), 1);
        let mut store = ReceiveStore::<u128>::default();
        decode_packet(CH_HEAVY, &payloads[0], word_bytes, &mut store);
        prop_assert_eq!(store.pairs, pairs);
        prop_assert!(store.plain.is_empty());
    }

    // Truncated word widths (k ≤ 32 ships 8-byte words even for u128
    // stores in the 9..=16 byte regime): width used on encode must
    // reproduce exactly on decode.
    #[test]
    fn heavy_packet_roundtrip_narrow_width(
        pairs in prop::collection::vec((any::<u64>(), 1u32..1000), 1..80),
        width in 5usize..=8,
    ) {
        let mask = if width == 8 { u64::MAX } else { (1u64 << (width * 8)) - 1 };
        let pairs: Vec<(u64, u32)> = pairs.into_iter().map(|(w, c)| (w & mask, c)).collect();
        let payload = encode_heavy_packet(&pairs, width);
        prop_assert_eq!(payload.len(), pairs.len() * (width + 4));
        let mut store = ReceiveStore::<u64>::default();
        decode_packet(CH_HEAVY, &payload, width, &mut store);
        prop_assert_eq!(store.pairs, pairs);
    }

    // A mixed stream of NORMAL and HEAVY packets over one framed
    // connection: every frame decodes on its announced channel.
    #[test]
    fn mixed_channel_stream_roundtrip(
        packets in prop::collection::vec(
            prop::collection::vec((any::<u64>(), 1u32..500), 1..40),
            1..12,
        ),
        heavy_mask in any::<u16>(),
        splits in prop::collection::vec(1usize..53, 1..16),
    ) {
        let word_bytes = 8;
        let mut wire = Vec::new();
        let mut want = ReceiveStore::<u64>::default();
        for (i, pkt) in packets.iter().enumerate() {
            if heavy_mask & (1 << (i as u16 % 16)) != 0 {
                let payload = encode_heavy_packet(pkt, word_bytes);
                wire.push((CH_HEAVY, payload));
                want.pairs.extend_from_slice(pkt);
            } else {
                let words: Vec<u64> = pkt.iter().map(|&(w, _)| w).collect();
                let payload = encode_normal_packet(&words, word_bytes);
                wire.push((CH_NORMAL, payload));
                want.plain.extend(words);
            }
        }
        // Prefix each payload with its channel byte, as one data frame.
        let mut bytes = Vec::new();
        for (ch, payload) in &wire {
            let mut tagged = vec![*ch];
            tagged.extend_from_slice(payload);
            bytes.extend_from_slice(&dakc_net::encode_frame(FrameKind::Data, &tagged));
        }
        let mut store = ReceiveStore::<u64>::default();
        for payload in decode_split(&bytes, &splits) {
            decode_packet(payload[0], &payload[1..], word_bytes, &mut store);
        }
        prop_assert_eq!(store.plain, want.plain);
        prop_assert_eq!(store.pairs, want.pairs);
    }
}

// ---------------------------------------------------------------------
// Fault injection (tentpole): the chaos wrapper must be invisible when
// off, deterministic when seeded, and every injected fault must surface
// as a typed error or a diagnosed stall — never a panic or a hang.
// ---------------------------------------------------------------------

/// Joins a chaos mesh's per-rank verdicts into rank 0's run, failing the
/// test if any rank errored.
fn expect_clean_run<W: KmerWord + RadixKey>(
    results: Vec<NetResult<Option<NetRun<W>>>>,
    what: &str,
) -> NetRun<W> {
    let mut root = None;
    for (rank, r) in results.into_iter().enumerate() {
        match r {
            Ok(Some(run)) => root = Some(run),
            Ok(None) => {}
            Err(e) => panic!("{what}: rank {rank} failed: {e}"),
        }
    }
    root.expect("rank 0 result")
}

#[test]
fn chaos_off_wrapper_is_bit_identical() {
    let reads = workload(21);
    let cfg = DakcConfig::scaled_defaults(15);
    let want = reference::<u64>(&reads, 15, cfg.canonical);
    for tcp in [false, true] {
        let tag = if tcp { "off-tcp" } else { "off-loop" };
        let results = run_ranks_chaos::<u64>(
            &reads, &cfg, 4, tag, None, 0, NetTuning::default(), tcp,
        );
        let run = expect_clean_run(results, tag);
        assert_eq!(run.counts, want, "tcp={tcp}: chaos-off wrapper changed the result");
        assert_eq!(run.metrics.counter("net.injected_faults"), 0, "tcp={tcp}");
    }
}

#[test]
fn chaos_delay_is_deterministic_and_preserves_counts() {
    let reads = workload(22);
    let cfg = DakcConfig::scaled_defaults(15);
    let want = reference::<u64>(&reads, 15, cfg.canonical);
    let mut seen = None;
    for attempt in 0..2 {
        let results = run_ranks_chaos::<u64>(
            &reads, &cfg, 4, &format!("delay{attempt}"),
            Some("delay=400"), 9, NetTuning::default(), false,
        );
        let run = expect_clean_run(results, "delay profile");
        assert_eq!(run.counts, want, "attempt {attempt}: delays corrupted the result");
        let faults = run.metrics.counter("net.injected_faults");
        assert!(faults > 0, "attempt {attempt}: no delays injected");
        if let Some(prev) = seen {
            assert_eq!(faults, prev, "same --chaos-seed must inject identically");
        }
        seen = Some(faults);
    }
}

// Silently dropped frames leave sends counted but never received: the
// four-counter protocol can never observe S == R, and every rank must
// abort with a diagnosed termination stall instead of spinning forever.
#[test]
fn chaos_drop_stalls_termination_with_typed_timeout() {
    let reads = workload(23);
    let cfg = DakcConfig::scaled_defaults(15);
    let tuning = NetTuning::default().with_timeout(Duration::from_secs(2));
    let results =
        run_ranks_chaos::<u64>(&reads, &cfg, 3, "drop", Some("drop=1000"), 5, tuning, false);
    let errs: Vec<String> = results
        .iter()
        .map(|r| match r {
            Ok(_) => "ok".to_string(),
            Err(e) => e.to_string(),
        })
        .collect();
    assert!(results.iter().all(Result::is_err), "lost frames but ranks converged: {errs:?}");
    let stalled = results.iter().any(|r| {
        matches!(r, Err(NetError::Timeout { phase, .. }) if phase == "termination")
    });
    assert!(stalled, "no rank diagnosed the termination stall: {errs:?}");
}

// A rank dying mid-cascade over real sockets: the dead rank surfaces its
// own injected error, and surviving ranks fast-fail with the dead rank's
// number well before the collective deadline.
#[test]
fn chaos_die_fast_fails_peers_naming_the_dead_rank() {
    let reads = workload(24);
    let cfg = DakcConfig::scaled_defaults(15);
    let tuning = NetTuning::default().with_timeout(Duration::from_secs(30));
    let started = std::time::Instant::now();
    let results =
        run_ranks_chaos::<u64>(&reads, &cfg, 3, "die", Some("die:1@40"), 0, tuning, true);
    let elapsed = started.elapsed();
    assert!(elapsed < Duration::from_secs(25), "fast-fail took {elapsed:?}");
    assert!(
        matches!(results[1], Err(NetError::Injected { rank: 1, .. })),
        "rank 1 should die of its injected fault"
    );
    let blamed = results
        .iter()
        .enumerate()
        .any(|(i, r)| i != 1 && matches!(r, Err(e) if e.rank() == Some(1)));
    assert!(blamed, "no surviving rank attributed the failure to rank 1");
}

// ---------------------------------------------------------------------
// Wire robustness (satellite): truncated, bit-flipped, and oversized
// streams must produce typed frame errors or clean parks — never a
// panic, an unbounded allocation, or a hang.
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Wire bit-identity golden: with super-k-mer encoding off, the cascade's
// data-frame stream per directed (src, dst) pair must stay byte-for-byte
// what PR 7 shipped. The golden digests below were captured from the
// unmodified PR 7 tree; any change to packet contents, record order, or
// ship thresholds in the default path trips this test.
// ---------------------------------------------------------------------

/// FNV-1a over a frame stream, length-delimited so frame boundaries are
/// part of the digest.
fn fnv_frame(mut h: u64, frame: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for b in (frame.len() as u32).to_le_bytes().into_iter().chain(frame.iter().copied()) {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Transport wrapper that digests every data frame per directed pair.
///
/// The single gather frame carrying the metrics-JSON registry is skipped:
/// it embeds timing-dependent counters (`net.term_rounds`, stalls) and is
/// the one payload that is legitimately nondeterministic. Everything else
/// — cascade packets, gather headers, HEAVY result chunks — depends only
/// on the sender's own deterministic parse, so a chained digest per
/// (src, dst) pair pins the wire bytes exactly.
struct DigestTransport<T> {
    inner: T,
    digests: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
}

impl<T: dakc_net::Transport> dakc_net::Transport for DigestTransport<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }
    fn num_ranks(&self) -> usize {
        self.inner.num_ranks()
    }
    fn send(&mut self, dest: usize, frame: &[u8]) -> NetResult<()> {
        let json = frame.first() == Some(&b'{') && frame.last() == Some(&b'}');
        if !json {
            let n = self.inner.num_ranks();
            let mut d = self.digests.lock().unwrap();
            let slot = &mut d[self.inner.rank() * n + dest];
            *slot = fnv_frame(if *slot == 0 { FNV_OFFSET } else { *slot }, frame);
        }
        self.inner.send(dest, frame)
    }
    fn try_recv(&mut self) -> NetResult<Option<(usize, Vec<u8>)>> {
        self.inner.try_recv()
    }
    fn flush(&mut self) -> NetResult<()> {
        self.inner.flush()
    }
    fn barrier(&mut self) -> NetResult<()> {
        self.inner.barrier()
    }
    fn termination_round(&mut self) -> NetResult<bool> {
        self.inner.termination_round()
    }
    fn stats(&self) -> &dakc_net::NetStats {
        self.inner.stats()
    }
    fn stats_mut(&mut self) -> &mut dakc_net::NetStats {
        self.inner.stats_mut()
    }
    fn last_global_totals(&self) -> Option<(u64, u64)> {
        self.inner.last_global_totals()
    }
    fn first_dead_peer(&self) -> Option<usize> {
        self.inner.first_dead_peer()
    }
    fn peer_dead(&self, rank: usize) -> bool {
        self.inner.peer_dead(rank)
    }
}

/// Runs a digest-wrapped mesh (loopback or in-process TCP) and returns
/// `(counts, per-pair digests)`.
fn run_digest_mesh(
    reads: &ReadSet,
    cfg: &DakcConfig,
    ranks: usize,
    tcp: bool,
    tag: &str,
) -> (Vec<KmerCount<u64>>, Vec<u64>) {
    let digests = std::sync::Arc::new(std::sync::Mutex::new(vec![0u64; ranks * ranks]));
    let dir = std::env::temp_dir().join(format!("dakc-it-digest-{}-{tag}", std::process::id()));
    if tcp {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut loop_mesh: Vec<Option<Loopback>> = if tcp {
        (0..ranks).map(|_| None).collect()
    } else {
        Loopback::mesh(ranks).into_iter().map(Some).collect()
    };
    let run = std::thread::scope(|s| {
        let handles: Vec<_> = loop_mesh
            .iter_mut()
            .enumerate()
            .map(|(rank, slot)| {
                let dir = dir.clone();
                let digests = digests.clone();
                let slot = slot.take();
                s.spawn(move || match slot {
                    Some(lo) => {
                        run_rank::<u64, _>(reads, cfg, DigestTransport { inner: lo, digests })
                            .unwrap()
                    }
                    None => {
                        let t = TcpTransport::rendezvous(rank, ranks, &dir, cfg.c0_bytes).unwrap();
                        run_rank::<u64, _>(reads, cfg, DigestTransport { inner: t, digests })
                            .unwrap()
                    }
                })
            })
            .collect();
        let mut out = None;
        for h in handles {
            if let Some(r) = h.join().expect("rank thread panicked") {
                out = Some(r);
            }
        }
        out.expect("rank 0 result")
    });
    if tcp {
        let _ = std::fs::remove_dir_all(&dir);
    }
    let d = digests.lock().unwrap().clone();
    (run.counts, d)
}

#[test]
fn default_mode_wire_digest_matches_pr7_golden() {
    // Captured from the unmodified PR 7 tree (workload(31), k=31,
    // scaled_defaults + L3, 3 ranks). Row-major [src * ranks + dst].
    const GOLDEN: [u64; 9] = [
        12694026684392949695,
        16696218413624755691,
        6956128918343755458,
        438335224893881240,
        14154194250041189132,
        16480700137519909968,
        8345637009309515526,
        444341173696052613,
        5555719435282938632,
    ];
    let reads = workload(31);
    let cfg = DakcConfig::scaled_defaults(31).with_l3();
    let want = reference::<u64>(&reads, 31, cfg.canonical);
    let (counts, loop_digest) = run_digest_mesh(&reads, &cfg, 3, false, "loop");
    assert_eq!(counts, want, "digest wrapper changed the loopback result");
    let (tcp_counts, tcp_digest) = run_digest_mesh(&reads, &cfg, 3, true, "tcp");
    assert_eq!(tcp_counts, want, "digest wrapper changed the tcp result");
    assert_eq!(
        loop_digest, tcp_digest,
        "loopback and TCP must ship identical per-pair data-frame streams"
    );
    assert_eq!(loop_digest.as_slice(), GOLDEN, "wire bytes diverged from the PR 7 golden");
}

// ---------------------------------------------------------------------
// Super-k-mer mode (tentpole): with `--superkmer` on, minimizer routing
// changes every wire payload but the merged histogram must stay
// bit-identical to the serial reference — across rank counts, both word
// widths, and both strand modes. And corruption of span payloads must
// surface as typed errors, never a panic or silently wrong counts.
// ---------------------------------------------------------------------

fn check_superkmer_identity<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    mode: CanonicalMode,
) {
    let mut off = DakcConfig::scaled_defaults(k);
    off.canonical = mode;
    let on = off.clone().with_superkmer(7);
    let want = reference::<W>(reads, k, mode);
    for ranks in [1usize, 2, 4] {
        let off_run = count_kmers_loopback::<W>(reads, &off, ranks).unwrap();
        assert_eq!(off_run.counts, want, "off: k={k} mode={mode:?} ranks={ranks}");
        let on_run = count_kmers_loopback::<W>(reads, &on, ranks).unwrap();
        assert_eq!(on_run.counts, want, "on: k={k} mode={mode:?} ranks={ranks}");
        assert!(
            on_run.metrics.counter("net.superkmer.spans") > 0,
            "k={k} mode={mode:?} ranks={ranks}: span path not exercised"
        );
    }
}

#[test]
fn superkmer_on_off_bit_identical_across_ranks_k_and_modes() {
    let reads = workload(31);
    for mode in [CanonicalMode::Forward, CanonicalMode::Canonical] {
        check_superkmer_identity::<u64>(&reads, 15, mode);
        check_superkmer_identity::<u64>(&reads, 31, mode);
        check_superkmer_identity::<u128>(&reads, 33, mode);
    }
}

#[test]
fn tcp_superkmer_matches_serial_and_counts_compression() {
    let reads = workload(32);
    let mut cfg = DakcConfig::scaled_defaults(31).with_superkmer(7);
    cfg.canonical = CanonicalMode::Canonical;
    let want = reference::<u64>(&reads, 31, cfg.canonical);
    let run = count_kmers_tcp_threads::<u64>(&reads, &cfg, 3, "superkmer");
    assert_eq!(run.counts, want);
    assert!(run.metrics.counter("net.superkmer.spans") > 0);
    assert!(run.metrics.counter("net.superkmer.bytes_sent") > 0);
    assert!(run.metrics.counter("agg.span_bases_saved") > 0);
}

// Truncation chaos replaces whole frames with garbage bytes while span
// frames are in flight over real sockets: every rank must come back
// with a typed error (the victim a frame-decode error, peers a typed
// timeout/abort) or — if it did finish — the exact reference counts.
// A panic anywhere fails the thread join.
#[test]
fn chaos_truncate_on_superkmer_frames_fails_typed_never_silent() {
    let reads = workload(33);
    let cfg = DakcConfig::scaled_defaults(15).with_superkmer(7);
    let want = reference::<u64>(&reads, 15, cfg.canonical);
    let tuning = NetTuning::default().with_timeout(Duration::from_secs(10));
    let results = run_ranks_chaos::<u64>(
        &reads, &cfg, 3, "sk-trunc", Some("truncate=1000"), 7, tuning, true,
    );
    let mut errs = Vec::new();
    for (rank, r) in results.iter().enumerate() {
        match r {
            Ok(Some(run)) => {
                assert_eq!(run.counts, want, "rank {rank}: silently wrong counts");
            }
            Ok(None) => {}
            Err(e) => errs.push(format!("rank {rank}: {e}")),
        }
    }
    assert!(
        results.iter().any(|r| matches!(
            r,
            Err(NetError::CorruptFrame { .. } | NetError::OversizedFrame { .. })
        )),
        "no rank surfaced a typed frame-decode error: {errs:?}"
    );
}

fn kind_of(tag: u8) -> FrameKind {
    FrameKind::from_u8(tag).expect("valid tag")
}

#[test]
fn oversized_length_prefix_rejected_before_payload() {
    let mut dec = FrameDecoder::with_max_len(1024);
    let mut header = 4096u32.to_le_bytes().to_vec();
    header.push(0); // Data
    dec.feed(&header);
    assert!(matches!(
        dec.next_frame(),
        Err(FrameError::Oversized { len: 4096, max: 1024 })
    ));
}

proptest! {
    // Truncating a valid stream at any byte: the decoder yields exactly
    // the frames whose bytes fully arrived and parks waiting for more —
    // never a phantom frame, never an error (truncation isn't corruption).
    #[test]
    fn truncated_stream_yields_exact_frame_prefix(
        frames in prop::collection::vec(
            (0u8..4, prop::collection::vec(any::<u8>(), 1..64)), 1..8),
        cut_raw in any::<u32>(),
    ) {
        let mut wire = Vec::new();
        let mut boundaries = Vec::new();
        for (tag, payload) in &frames {
            wire.extend_from_slice(&dakc_net::encode_frame(kind_of(*tag), payload));
            boundaries.push(wire.len());
        }
        let cut = cut_raw as usize % (wire.len() + 1);
        let complete = boundaries.iter().filter(|&&b| b <= cut).count();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..cut]);
        let mut got = Vec::new();
        while let Some(frame) = dec.next_frame().expect("truncation is not corruption") {
            got.push(frame);
        }
        prop_assert_eq!(got.len(), complete);
        for (g, f) in got.iter().zip(frames.iter()) {
            prop_assert_eq!(g.0, kind_of(f.0));
            prop_assert_eq!(&g.1, &f.1);
        }
    }

    // One flipped bit anywhere in the stream, fed in arbitrary chunks:
    // the decoder either keeps producing frames (the flip landed in a
    // payload) or surfaces a typed frame error. It must never panic and
    // the frame count stays bounded by the wire length.
    #[test]
    fn bit_flip_yields_frames_or_typed_error(
        frames in prop::collection::vec(
            (0u8..4, prop::collection::vec(any::<u8>(), 1..64)), 1..8),
        flip_raw in any::<u32>(),
        chunk in 1usize..64,
    ) {
        let mut wire = Vec::new();
        for (tag, payload) in &frames {
            wire.extend_from_slice(&dakc_net::encode_frame(kind_of(*tag), payload));
        }
        let at = flip_raw as usize % (wire.len() * 8);
        wire[at / 8] ^= 1 << (at % 8);
        let mut dec = FrameDecoder::with_max_len(1 << 16);
        let mut decoded = 0usize;
        'outer: for part in wire.chunks(chunk) {
            dec.feed(part);
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => {
                        decoded += 1;
                        // A shrunk length prefix can re-frame the tail,
                        // but every frame still costs ≥ 5 wire bytes.
                        prop_assert!(decoded <= wire.len() / 5 + 1);
                    }
                    Ok(None) => break,
                    Err(
                        FrameError::BadKind(_)
                        | FrameError::BadLength(_)
                        | FrameError::Oversized { .. },
                    ) => break 'outer,
                }
            }
        }
    }

    // One level up from frames: a CH_SUPER payload that frames cleanly
    // but carries truncated or bit-flipped span records. The span codec
    // must return a typed `SpanDecodeError` or decode to a bounded
    // number of k-mers (every 2-bit pattern is a valid base, so a flip
    // in the bases decodes — the aggregator's counts then differ from
    // the sender's and the termination protocol stalls typed) — never
    // panic.
    #[test]
    fn corrupted_span_payload_decodes_typed(
        seqs in prop::collection::vec(
            prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 15..120),
            1..6),
        cut_raw in any::<u32>(),
        flip_raw in any::<u32>(),
    ) {
        let k = 15;
        let mut buf = Vec::new();
        for s in &seqs {
            dakc_kmer::for_each_span(s, k, 7, false, |_mz, span| {
                dakc_kmer::pack_span(&mut buf, span);
            });
        }
        let mut clean: Vec<u64> = Vec::new();
        dakc_kmer::unpack_spans(&buf, k, false, &mut clean).expect("clean stream decodes");
        prop_assert!(!clean.is_empty());
        // Truncate anywhere: a prefix of records decodes, the torn
        // record (if the cut is mid-record) is a typed error.
        let cut = cut_raw as usize % buf.len();
        let mut got: Vec<u64> = Vec::new();
        let _typed: Result<_, dakc_kmer::SpanDecodeError> =
            dakc_kmer::unpack_spans(&buf[..cut], k, false, &mut got);
        prop_assert!(got.len() <= clean.len());
        prop_assert_eq!(&got[..], &clean[..got.len()]);
        // Flip one bit anywhere: typed error or bounded decode.
        let mut flipped = buf.clone();
        let at = flip_raw as usize % (buf.len() * 8);
        flipped[at / 8] ^= 1 << (at % 8);
        let mut got: Vec<u64> = Vec::new();
        let _typed: Result<_, dakc_kmer::SpanDecodeError> =
            dakc_kmer::unpack_spans(&flipped, k, false, &mut got);
        prop_assert!(got.len() <= flipped.len() * 4);
    }
}
