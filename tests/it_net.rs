//! Distributed-runtime integration tests: the real-transport engine
//! (`dakc-net` under the Conveyor L0) must be bit-identical to the serial
//! baseline over both backends, terminate without deadlock in the
//! degenerate topologies, and round-trip every wire format.

use dakc::{count_kmers_loopback, decode_packet, encode_heavy_packet, encode_normal_packet,
    run_rank, run_rank_opts, DakcConfig, NetRun, ReceiveStore, RunOpts};
use dakc_baselines::count_kmers_serial;
use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSet, ReadSimConfig, RepeatProfile};
use dakc_kmer::{CanonicalMode, KmerCount, KmerWord};
use dakc_net::{
    ChaosConfig, ChaosTransport, FrameDecoder, FrameError, FrameKind, Loopback, NetError,
    NetResult, NetTuning, TcpTransport,
};
use dakc_sort::RadixKey;
use proptest::prelude::*;
use std::time::Duration;

const CH_NORMAL: u8 = 0;
const CH_HEAVY: u8 = 1;

fn workload(seed: u64) -> ReadSet {
    let genome = generate_genome(
        &GenomeSpec { bases: 5_000, repeats: Some(RepeatProfile::aatgg(0.12)) },
        seed,
    );
    simulate_reads(
        &genome,
        &ReadSimConfig { read_len: 100, num_reads: 300, error_rate: 0.01, both_strands: false },
        seed,
    )
}

fn reference<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    mode: CanonicalMode,
) -> Vec<KmerCount<W>> {
    count_kmers_serial::<W>(reads, k, mode, false).counts
}

/// Runs the distributed engine over an in-process TCP mesh: one thread
/// per rank, rendezvous through a unique temp dir, real sockets on
/// localhost.
fn count_kmers_tcp_threads<W: KmerWord + RadixKey + Send>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    ranks: usize,
    tag: &str,
) -> NetRun<W> {
    let dir = std::env::temp_dir().join(format!("dakc-it-net-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = std::thread::scope(|s| {
        let handles: Vec<_> = (0..ranks)
            .map(|rank| {
                let dir = dir.clone();
                s.spawn(move || {
                    let t = TcpTransport::rendezvous(rank, ranks, &dir, cfg.c0_bytes).unwrap();
                    run_rank::<W, _>(reads, cfg, t).unwrap()
                })
            })
            .collect();
        let mut out = None;
        for h in handles {
            if let Some(r) = h.join().expect("rank thread panicked") {
                out = Some(r);
            }
        }
        out.expect("rank 0 result")
    });
    let _ = std::fs::remove_dir_all(&dir);
    run
}

/// Runs the distributed engine with every rank's transport wrapped in a
/// [`ChaosTransport`] — over an in-process TCP mesh when `tcp` is set,
/// else a loopback mesh — returning each rank's verdict (no unwrap: the
/// fault-injection tests assert on the errors).
#[allow(clippy::too_many_arguments)]
fn run_ranks_chaos<W: KmerWord + RadixKey + Send>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    ranks: usize,
    tag: &str,
    profile: Option<&str>,
    seed: u64,
    tuning: NetTuning,
    tcp: bool,
) -> Vec<NetResult<Option<NetRun<W>>>> {
    let chaos_for = |rank: usize| match profile {
        Some(p) => ChaosConfig::parse(p, seed, rank).expect("chaos profile"),
        None => ChaosConfig::off(),
    };
    let dir = std::env::temp_dir().join(format!("dakc-it-chaos-{}-{tag}", std::process::id()));
    if tcp {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut loop_mesh: Vec<Option<Loopback>> = if tcp {
        (0..ranks).map(|_| None).collect()
    } else {
        Loopback::mesh_tuned(ranks, tuning.clone()).into_iter().map(Some).collect()
    };
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = loop_mesh
            .iter_mut()
            .enumerate()
            .map(|(rank, slot)| {
                let dir = dir.clone();
                let tuning = tuning.clone();
                let chaos = chaos_for(rank);
                let slot = slot.take();
                s.spawn(move || {
                    let opts = RunOpts { tuning: tuning.clone(), ..RunOpts::default() };
                    match slot {
                        Some(lo) => run_rank_opts::<W, _>(
                            reads,
                            cfg,
                            ChaosTransport::new(lo, chaos),
                            &opts,
                        ),
                        None => {
                            let t = TcpTransport::rendezvous_tuned(
                                rank, ranks, &dir, cfg.c0_bytes, tuning,
                            )?;
                            run_rank_opts::<W, _>(reads, cfg, ChaosTransport::new(t, chaos), &opts)
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    });
    if tcp {
        let _ = std::fs::remove_dir_all(&dir);
    }
    results
}

#[test]
fn loopback_matches_serial_across_ranks_and_modes() {
    let reads = workload(11);
    for k in [15, 31] {
        for mode in [CanonicalMode::Forward, CanonicalMode::Canonical] {
            let mut cfg = DakcConfig::scaled_defaults(k);
            cfg.canonical = mode;
            let want = reference::<u64>(&reads, k, mode);
            for ranks in [1, 2, 4, 7] {
                let run = count_kmers_loopback::<u64>(&reads, &cfg, ranks).unwrap();
                assert_eq!(run.counts, want, "k={k} mode={mode:?} ranks={ranks}");
            }
        }
    }
}

#[test]
fn loopback_matches_serial_with_l3_enabled() {
    let reads = workload(12);
    let cfg = DakcConfig::scaled_defaults(21).with_l3();
    let want = reference::<u64>(&reads, 21, cfg.canonical);
    for ranks in [2, 5] {
        let run = count_kmers_loopback::<u64>(&reads, &cfg, ranks).unwrap();
        assert_eq!(run.counts, want, "l3 ranks={ranks}");
    }
}

#[test]
fn loopback_matches_serial_for_kmer128() {
    let reads = workload(13);
    let k = 33;
    let cfg = DakcConfig::scaled_defaults(k);
    let want = reference::<u128>(&reads, k, cfg.canonical);
    for ranks in [1, 3] {
        let run = count_kmers_loopback::<u128>(&reads, &cfg, ranks).unwrap();
        assert_eq!(run.counts, want, "u128 ranks={ranks}");
    }
}

#[test]
fn tcp_matches_serial() {
    let reads = workload(14);
    let cfg = DakcConfig::scaled_defaults(19).with_l3();
    let want = reference::<u64>(&reads, 19, cfg.canonical);
    let run = count_kmers_tcp_threads::<u64>(&reads, &cfg, 4, "agree");
    assert_eq!(run.counts, want);
    assert!(run.metrics.counter("net.frames_sent") > 0);
    assert_eq!(run.metrics.counter("net.ranks"), 4);
}

// Regression: ranks=1 has no remote peers — every send is a self-
// delivery and the termination protocol must still converge (two
// confirming rounds on (0, 0) deltas), in both backends.
#[test]
fn single_rank_terminates_loopback_and_tcp() {
    let reads = workload(15);
    let cfg = DakcConfig::scaled_defaults(17);
    let want = reference::<u64>(&reads, 17, cfg.canonical);
    let loop_run = count_kmers_loopback::<u64>(&reads, &cfg, 1).unwrap();
    assert_eq!(loop_run.counts, want, "loopback ranks=1");
    let tcp_run = count_kmers_tcp_threads::<u64>(&reads, &cfg, 1, "single");
    assert_eq!(tcp_run.counts, want, "tcp ranks=1");
}

// Regression: more ranks than reads leaves some ranks with an empty
// read slice. They flush nothing, contribute (0, 0) to every
// termination round, and must neither deadlock the collective nor
// corrupt the histogram.
#[test]
fn zero_input_ranks_terminate_loopback_and_tcp() {
    let mut reads = ReadSet::new();
    reads.push(b"ACGTACGTAACCGGTTACGTACGT");
    reads.push(b"TTTTTTTTTTTTTTTTTTTT");
    let cfg = DakcConfig::scaled_defaults(9);
    let want = reference::<u64>(&reads, 9, cfg.canonical);
    let ranks = 6; // > number of reads / 2: ranks 2.. get empty slices
    let loop_run = count_kmers_loopback::<u64>(&reads, &cfg, ranks).unwrap();
    assert_eq!(loop_run.counts, want, "loopback zero-input ranks");
    let tcp_run = count_kmers_tcp_threads::<u64>(&reads, &cfg, ranks, "zeroin");
    assert_eq!(tcp_run.counts, want, "tcp zero-input ranks");
}

// ---------------------------------------------------------------------
// Wire-format round-trips (satellite: L2 packets and HEAVY pairs over
// the framed transport, fuzzing lengths and split reads).
// ---------------------------------------------------------------------

/// Pushes `wire` through a [`FrameDecoder`] in chunks drawn from
/// `splits`, returning every decoded data payload.
fn decode_split(wire: &[u8], splits: &[usize]) -> Vec<Vec<u8>> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut at = 0;
    let mut si = 0;
    while at < wire.len() {
        let step = splits[si % splits.len()].min(wire.len() - at);
        si += 1;
        dec.feed(&wire[at..at + step]);
        at += step;
        while let Some((kind, payload)) = dec.next_frame().unwrap() {
            assert_eq!(kind, FrameKind::Data);
            out.push(payload);
        }
    }
    assert_eq!(dec.pending_bytes(), 0);
    out
}

proptest! {
    // NORMAL packets (one k-mer word per record) survive framing with
    // arbitrary read splits, for both word widths.
    #[test]
    fn normal_packet_roundtrip_u64(
        words in prop::collection::vec(any::<u64>(), 1..200),
        splits in prop::collection::vec(1usize..61, 1..20),
    ) {
        let word_bytes = 8;
        let payload = encode_normal_packet(&words, word_bytes);
        let wire = dakc_net::encode_frame(FrameKind::Data, &payload);
        let payloads = decode_split(&wire, &splits);
        prop_assert_eq!(payloads.len(), 1);
        let mut store = ReceiveStore::<u64>::default();
        decode_packet(CH_NORMAL, &payloads[0], word_bytes, &mut store);
        prop_assert_eq!(store.plain, words);
        prop_assert!(store.pairs.is_empty());
    }

    // HEAVY `{kmer, count}` pairs round-trip for Kmer128 words (k > 32:
    // 16-byte words, the full 128-bit range).
    #[test]
    fn heavy_packet_roundtrip_u128(
        pairs in prop::collection::vec((any::<u128>(), 1u32..u32::MAX), 1..120),
        splits in prop::collection::vec(1usize..97, 1..20),
    ) {
        let word_bytes = 16;
        let payload = encode_heavy_packet(&pairs, word_bytes);
        let wire = dakc_net::encode_frame(FrameKind::Data, &payload);
        let payloads = decode_split(&wire, &splits);
        prop_assert_eq!(payloads.len(), 1);
        let mut store = ReceiveStore::<u128>::default();
        decode_packet(CH_HEAVY, &payloads[0], word_bytes, &mut store);
        prop_assert_eq!(store.pairs, pairs);
        prop_assert!(store.plain.is_empty());
    }

    // Truncated word widths (k ≤ 32 ships 8-byte words even for u128
    // stores in the 9..=16 byte regime): width used on encode must
    // reproduce exactly on decode.
    #[test]
    fn heavy_packet_roundtrip_narrow_width(
        pairs in prop::collection::vec((any::<u64>(), 1u32..1000), 1..80),
        width in 5usize..=8,
    ) {
        let mask = if width == 8 { u64::MAX } else { (1u64 << (width * 8)) - 1 };
        let pairs: Vec<(u64, u32)> = pairs.into_iter().map(|(w, c)| (w & mask, c)).collect();
        let payload = encode_heavy_packet(&pairs, width);
        prop_assert_eq!(payload.len(), pairs.len() * (width + 4));
        let mut store = ReceiveStore::<u64>::default();
        decode_packet(CH_HEAVY, &payload, width, &mut store);
        prop_assert_eq!(store.pairs, pairs);
    }

    // A mixed stream of NORMAL and HEAVY packets over one framed
    // connection: every frame decodes on its announced channel.
    #[test]
    fn mixed_channel_stream_roundtrip(
        packets in prop::collection::vec(
            prop::collection::vec((any::<u64>(), 1u32..500), 1..40),
            1..12,
        ),
        heavy_mask in any::<u16>(),
        splits in prop::collection::vec(1usize..53, 1..16),
    ) {
        let word_bytes = 8;
        let mut wire = Vec::new();
        let mut want = ReceiveStore::<u64>::default();
        for (i, pkt) in packets.iter().enumerate() {
            if heavy_mask & (1 << (i as u16 % 16)) != 0 {
                let payload = encode_heavy_packet(pkt, word_bytes);
                wire.push((CH_HEAVY, payload));
                want.pairs.extend_from_slice(pkt);
            } else {
                let words: Vec<u64> = pkt.iter().map(|&(w, _)| w).collect();
                let payload = encode_normal_packet(&words, word_bytes);
                wire.push((CH_NORMAL, payload));
                want.plain.extend(words);
            }
        }
        // Prefix each payload with its channel byte, as one data frame.
        let mut bytes = Vec::new();
        for (ch, payload) in &wire {
            let mut tagged = vec![*ch];
            tagged.extend_from_slice(payload);
            bytes.extend_from_slice(&dakc_net::encode_frame(FrameKind::Data, &tagged));
        }
        let mut store = ReceiveStore::<u64>::default();
        for payload in decode_split(&bytes, &splits) {
            decode_packet(payload[0], &payload[1..], word_bytes, &mut store);
        }
        prop_assert_eq!(store.plain, want.plain);
        prop_assert_eq!(store.pairs, want.pairs);
    }
}

// ---------------------------------------------------------------------
// Fault injection (tentpole): the chaos wrapper must be invisible when
// off, deterministic when seeded, and every injected fault must surface
// as a typed error or a diagnosed stall — never a panic or a hang.
// ---------------------------------------------------------------------

/// Joins a chaos mesh's per-rank verdicts into rank 0's run, failing the
/// test if any rank errored.
fn expect_clean_run<W: KmerWord + RadixKey>(
    results: Vec<NetResult<Option<NetRun<W>>>>,
    what: &str,
) -> NetRun<W> {
    let mut root = None;
    for (rank, r) in results.into_iter().enumerate() {
        match r {
            Ok(Some(run)) => root = Some(run),
            Ok(None) => {}
            Err(e) => panic!("{what}: rank {rank} failed: {e}"),
        }
    }
    root.expect("rank 0 result")
}

#[test]
fn chaos_off_wrapper_is_bit_identical() {
    let reads = workload(21);
    let cfg = DakcConfig::scaled_defaults(15);
    let want = reference::<u64>(&reads, 15, cfg.canonical);
    for tcp in [false, true] {
        let tag = if tcp { "off-tcp" } else { "off-loop" };
        let results = run_ranks_chaos::<u64>(
            &reads, &cfg, 4, tag, None, 0, NetTuning::default(), tcp,
        );
        let run = expect_clean_run(results, tag);
        assert_eq!(run.counts, want, "tcp={tcp}: chaos-off wrapper changed the result");
        assert_eq!(run.metrics.counter("net.injected_faults"), 0, "tcp={tcp}");
    }
}

#[test]
fn chaos_delay_is_deterministic_and_preserves_counts() {
    let reads = workload(22);
    let cfg = DakcConfig::scaled_defaults(15);
    let want = reference::<u64>(&reads, 15, cfg.canonical);
    let mut seen = None;
    for attempt in 0..2 {
        let results = run_ranks_chaos::<u64>(
            &reads, &cfg, 4, &format!("delay{attempt}"),
            Some("delay=400"), 9, NetTuning::default(), false,
        );
        let run = expect_clean_run(results, "delay profile");
        assert_eq!(run.counts, want, "attempt {attempt}: delays corrupted the result");
        let faults = run.metrics.counter("net.injected_faults");
        assert!(faults > 0, "attempt {attempt}: no delays injected");
        if let Some(prev) = seen {
            assert_eq!(faults, prev, "same --chaos-seed must inject identically");
        }
        seen = Some(faults);
    }
}

// Silently dropped frames leave sends counted but never received: the
// four-counter protocol can never observe S == R, and every rank must
// abort with a diagnosed termination stall instead of spinning forever.
#[test]
fn chaos_drop_stalls_termination_with_typed_timeout() {
    let reads = workload(23);
    let cfg = DakcConfig::scaled_defaults(15);
    let tuning = NetTuning::default().with_timeout(Duration::from_secs(2));
    let results =
        run_ranks_chaos::<u64>(&reads, &cfg, 3, "drop", Some("drop=1000"), 5, tuning, false);
    let errs: Vec<String> = results
        .iter()
        .map(|r| match r {
            Ok(_) => "ok".to_string(),
            Err(e) => e.to_string(),
        })
        .collect();
    assert!(results.iter().all(Result::is_err), "lost frames but ranks converged: {errs:?}");
    let stalled = results.iter().any(|r| {
        matches!(r, Err(NetError::Timeout { phase, .. }) if phase == "termination")
    });
    assert!(stalled, "no rank diagnosed the termination stall: {errs:?}");
}

// A rank dying mid-cascade over real sockets: the dead rank surfaces its
// own injected error, and surviving ranks fast-fail with the dead rank's
// number well before the collective deadline.
#[test]
fn chaos_die_fast_fails_peers_naming_the_dead_rank() {
    let reads = workload(24);
    let cfg = DakcConfig::scaled_defaults(15);
    let tuning = NetTuning::default().with_timeout(Duration::from_secs(30));
    let started = std::time::Instant::now();
    let results =
        run_ranks_chaos::<u64>(&reads, &cfg, 3, "die", Some("die:1@40"), 0, tuning, true);
    let elapsed = started.elapsed();
    assert!(elapsed < Duration::from_secs(25), "fast-fail took {elapsed:?}");
    assert!(
        matches!(results[1], Err(NetError::Injected { rank: 1, .. })),
        "rank 1 should die of its injected fault"
    );
    let blamed = results
        .iter()
        .enumerate()
        .any(|(i, r)| i != 1 && matches!(r, Err(e) if e.rank() == Some(1)));
    assert!(blamed, "no surviving rank attributed the failure to rank 1");
}

// ---------------------------------------------------------------------
// Wire robustness (satellite): truncated, bit-flipped, and oversized
// streams must produce typed frame errors or clean parks — never a
// panic, an unbounded allocation, or a hang.
// ---------------------------------------------------------------------

fn kind_of(tag: u8) -> FrameKind {
    FrameKind::from_u8(tag).expect("valid tag")
}

#[test]
fn oversized_length_prefix_rejected_before_payload() {
    let mut dec = FrameDecoder::with_max_len(1024);
    let mut header = 4096u32.to_le_bytes().to_vec();
    header.push(0); // Data
    dec.feed(&header);
    assert!(matches!(
        dec.next_frame(),
        Err(FrameError::Oversized { len: 4096, max: 1024 })
    ));
}

proptest! {
    // Truncating a valid stream at any byte: the decoder yields exactly
    // the frames whose bytes fully arrived and parks waiting for more —
    // never a phantom frame, never an error (truncation isn't corruption).
    #[test]
    fn truncated_stream_yields_exact_frame_prefix(
        frames in prop::collection::vec(
            (0u8..4, prop::collection::vec(any::<u8>(), 1..64)), 1..8),
        cut_raw in any::<u32>(),
    ) {
        let mut wire = Vec::new();
        let mut boundaries = Vec::new();
        for (tag, payload) in &frames {
            wire.extend_from_slice(&dakc_net::encode_frame(kind_of(*tag), payload));
            boundaries.push(wire.len());
        }
        let cut = cut_raw as usize % (wire.len() + 1);
        let complete = boundaries.iter().filter(|&&b| b <= cut).count();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..cut]);
        let mut got = Vec::new();
        while let Some(frame) = dec.next_frame().expect("truncation is not corruption") {
            got.push(frame);
        }
        prop_assert_eq!(got.len(), complete);
        for (g, f) in got.iter().zip(frames.iter()) {
            prop_assert_eq!(g.0, kind_of(f.0));
            prop_assert_eq!(&g.1, &f.1);
        }
    }

    // One flipped bit anywhere in the stream, fed in arbitrary chunks:
    // the decoder either keeps producing frames (the flip landed in a
    // payload) or surfaces a typed frame error. It must never panic and
    // the frame count stays bounded by the wire length.
    #[test]
    fn bit_flip_yields_frames_or_typed_error(
        frames in prop::collection::vec(
            (0u8..4, prop::collection::vec(any::<u8>(), 1..64)), 1..8),
        flip_raw in any::<u32>(),
        chunk in 1usize..64,
    ) {
        let mut wire = Vec::new();
        for (tag, payload) in &frames {
            wire.extend_from_slice(&dakc_net::encode_frame(kind_of(*tag), payload));
        }
        let at = flip_raw as usize % (wire.len() * 8);
        wire[at / 8] ^= 1 << (at % 8);
        let mut dec = FrameDecoder::with_max_len(1 << 16);
        let mut decoded = 0usize;
        'outer: for part in wire.chunks(chunk) {
            dec.feed(part);
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => {
                        decoded += 1;
                        // A shrunk length prefix can re-frame the tail,
                        // but every frame still costs ≥ 5 wire bytes.
                        prop_assert!(decoded <= wire.len() / 5 + 1);
                    }
                    Ok(None) => break,
                    Err(
                        FrameError::BadKind(_)
                        | FrameError::BadLength(_)
                        | FrameError::Oversized { .. },
                    ) => break 'outer,
                }
            }
        }
    }
}
