//! Integration tests spanning the DAKC crates live in this package; see the `it_*.rs` test targets.
