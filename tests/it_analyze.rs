//! Analyzer integration tests: `dakc-analyze` over real trace artifacts
//! from both engines. The acceptance criteria of the analytics
//! subsystem, asserted end to end:
//!
//! * the critical path's stage times (plus compute gaps) telescope to
//!   its measured end-to-end span,
//! * every rank's compute↔comm overlap fraction lands in `[0, 1]`,
//! * the communication matrix is full P×P with real traffic in it,
//! * re-analyzing the same artifact is deterministic, byte for byte.

use dakc::{count_kmers_loopback_opts, count_kmers_sim_traced, DakcConfig, RunOpts};
use dakc_analyze::{analyze, diff_bodies, CommMatrix, Input};
use dakc_io::datasets::synthetic;
use dakc_sim::telemetry::{chrome_trace, chrome_trace_with, read_chrome_trace, TraceSink};
use dakc_sim::MachineConfig;

/// A simulated 2-node run exported exactly as `dakc simulate --trace`
/// writes it (full-rate flow tagging so the critical path has material).
fn sim_trace_doc() -> String {
    let reads = synthetic(21).scaled(14).generate(7);
    let machine = MachineConfig::test_machine(2, 3);
    let cfg = DakcConfig::scaled_defaults(15).with_l3().with_trace_sample(1);
    let mut sink = TraceSink::ring_default();
    let run = count_kmers_sim_traced::<u64>(&reads, &cfg, &machine, &mut sink).unwrap();
    assert!(!run.counts.is_empty());
    chrome_trace(&sink.events(), 3)
}

/// A real 3-rank loopback run exported exactly as `dakc launch --trace`
/// writes it: merged wall-clock events plus the gathered per-peer
/// traffic counters as trace metadata.
fn launch_trace_doc() -> String {
    let reads = synthetic(21).scaled(14).generate(7);
    let cfg = DakcConfig::scaled_defaults(15).with_trace_sample(1);
    let opts = RunOpts { trace: true, ..RunOpts::default() };
    let run = count_kmers_loopback_opts::<u64>(&reads, &cfg, 3, &opts).unwrap();
    assert!(!run.trace.is_empty(), "traced run produced no events");
    let matrix = CommMatrix::from_metrics(&run.metrics);
    assert!(!matrix.is_empty(), "per-peer counters missing from gathered metrics");
    chrome_trace_with(&run.trace, 1, Some(&matrix.to_dakc_meta()))
}

fn assert_analysis_invariants(doc: &str, ranks: usize) {
    let trace = read_chrome_trace(doc).unwrap();
    let a = analyze(&trace);
    assert_eq!(a.nodes, ranks);

    // Critical path exists and telescopes: Σ stages + compute == span.
    let p = a.critical.as_ref().expect("flow-traced run must yield a critical path");
    assert!(p.hops() >= 1);
    assert!(p.span_s > 0.0);
    assert!(
        (p.accounted_s() - p.span_s).abs() < 1e-6 * p.span_s.max(1.0),
        "stages+compute {} != span {}",
        p.accounted_s(),
        p.span_s
    );
    // The path cannot be longer than the run itself.
    assert!(p.span_s <= a.e2e_s + 1e-9, "path {} > run span {}", p.span_s, a.e2e_s);

    // Overlap fraction is a fraction, on every rank.
    assert_eq!(a.load.ranks.len(), ranks);
    for r in &a.load.ranks {
        assert!((0.0..=1.0).contains(&r.overlap), "rank {}: overlap {}", r.node, r.overlap);
        assert!(r.busy_s >= 0.0 && r.comm_s >= 0.0);
    }

    // Full P×P matrix with traffic somewhere off the diagonal.
    assert_eq!(a.matrix.n, ranks);
    assert_eq!(a.matrix.bytes.len(), ranks * ranks);
    let off_diag: u64 = (0..ranks)
        .flat_map(|s| (0..ranks).map(move |d| (s, d)))
        .filter(|&(s, d)| s != d)
        .map(|(s, d)| a.matrix.bytes_at(s, d))
        .sum();
    assert!(off_diag > 0, "no cross-rank traffic in matrix");

    // Deterministic re-analysis: same report, same artifact bytes.
    let b = analyze(&read_chrome_trace(doc).unwrap());
    assert_eq!(a.render(), b.render());
    assert_eq!(a.artifact().to_json(), b.artifact().to_json());
}

#[test]
fn analyzes_simulated_trace_artifact() {
    assert_analysis_invariants(&sim_trace_doc(), 2);
}

#[test]
fn analyzes_real_loopback_launch_trace() {
    assert_analysis_invariants(&launch_trace_doc(), 3);
}

#[test]
fn launch_trace_matrix_comes_from_exact_metadata() {
    let doc = launch_trace_doc();
    let trace = read_chrome_trace(&doc).unwrap();
    let meta = trace.dakc.as_ref().expect("launch trace must embed dakc metadata");
    let exact = CommMatrix::from_dakc_meta(meta).unwrap();
    assert_eq!(analyze(&trace).matrix, exact);
    assert_eq!(exact.n, 3);
}

#[test]
fn sim_artifact_self_diff_is_clean_and_classifier_agrees() {
    let doc = sim_trace_doc();
    match dakc_analyze::classify(&doc).unwrap() {
        Input::Trace(t) => {
            let body = analyze(&t).artifact().to_json();
            let (report, regressed) = diff_bodies(&body, &body, 1.1).unwrap();
            assert!(!regressed, "{report}");
        }
        other => panic!("trace classified as {}", other.kind()),
    }
}
