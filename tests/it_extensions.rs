//! Integration tests for the extension features: phase overlap, Bloom
//! filtering, the hash-table baseline, and spectrum analytics — all
//! cross-checked against the primary engines.

use dakc::{count_kmers_sim, count_kmers_sim_overlap, count_kmers_threaded, DakcConfig};
use dakc_baselines::{count_kmers_hash_sim, count_kmers_serial, HashKcConfig};
use dakc_io::datasets::synthetic;
use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig, RepeatProfile};
use dakc_kmer::{spectrum, CanonicalMode};
use dakc_sim::MachineConfig;

#[test]
fn overlap_engine_agrees_on_registry_dataset() {
    let reads = synthetic(22).scaled(12).generate(5);
    let machine = MachineConfig::phoenix_intel(2);
    let cfg = DakcConfig::scaled_defaults(31);
    let stock = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
    let overlap = count_kmers_sim_overlap::<u64>(&reads, &cfg, &machine).unwrap();
    assert_eq!(stock.counts, overlap.counts);
    assert_eq!(overlap.report.barriers_completed, 1);
}

#[test]
fn overlap_engine_agrees_with_l3_on_skewed_data() {
    let genome = generate_genome(
        &GenomeSpec { bases: 20_000, repeats: Some(RepeatProfile::aatgg(0.15)) },
        9,
    );
    let reads = simulate_reads(&genome, &ReadSimConfig::art_like(2_000), 9);
    let machine = MachineConfig::phoenix_intel(2);
    let cfg = DakcConfig::scaled_defaults(31).with_l3();
    let stock = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
    let overlap = count_kmers_sim_overlap::<u64>(&reads, &cfg, &machine).unwrap();
    assert_eq!(stock.counts, overlap.counts);
}

#[test]
fn hash_baseline_agrees_with_sorting_engines() {
    let reads = synthetic(21).scaled(12).generate(6);
    let machine = MachineConfig::phoenix_intel(2);
    let hash = count_kmers_hash_sim::<u64>(&reads, &HashKcConfig::defaults(31), &machine).unwrap();
    let dakc_run =
        count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(31), &machine).unwrap();
    assert_eq!(hash.counts, dakc_run.counts);
}

#[test]
fn filtered_counting_preserves_all_repeats_of_a_real_workload() {
    let reads = synthetic(22).scaled(12).generate(7);
    let k = 31;
    let exact = count_kmers_serial::<u64>(&reads, k, CanonicalMode::Forward, false).counts;
    let filtered = dakc::count_kmers_filtered::<u64>(
        &reads,
        k,
        CanonicalMode::Forward,
        4,
        exact.len(),
        0.01,
    );
    let got: std::collections::HashMap<u64, u32> =
        filtered.counts.iter().map(|c| (c.kmer, c.count)).collect();
    for c in exact.iter().filter(|c| c.count >= 2) {
        assert_eq!(got.get(&c.kmer), Some(&c.count), "lost repeat k-mer");
    }
}

#[test]
fn spectrum_analytics_recover_coverage_from_counted_reads() {
    // ~35x base coverage, low error: the genomic peak should be near the
    // k-mer coverage.
    let genome = generate_genome(&GenomeSpec { bases: 50_000, repeats: None }, 4);
    let k = 21;
    let m = 120;
    let cfg = ReadSimConfig {
        read_len: m,
        num_reads: 35 * 50_000 / m,
        error_rate: 0.003,
        both_strands: false,
    };
    let reads = simulate_reads(&genome, &cfg, 4);
    let run = count_kmers_threaded::<u64>(&reads, k, CanonicalMode::Forward, 4, None);
    let summary = spectrum::analyze(&run.counts, 120);
    let cov = summary.coverage.expect("bimodal spectrum");
    let expect = 35.0 * (m - k + 1) as f64 / m as f64;
    assert!(
        (cov - expect).abs() / expect < 0.25,
        "coverage {cov:.1} vs expected {expect:.1}"
    );
    // Genome-size estimate within 20%.
    let gsize = summary.genome_kmers.expect("estimate");
    assert!(
        (gsize - 50_000.0).abs() / 50_000.0 < 0.2,
        "genome size estimate {gsize:.0}"
    );
}

#[test]
fn timeline_renders_for_a_real_run() {
    let reads = synthetic(20).scaled(12).generate(8);
    let machine = MachineConfig::test_machine(2, 2);
    let run = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(15), &machine).unwrap();
    let text = dakc_sim::Timeline::new(&run.report).render();
    assert_eq!(text.lines().count(), 6); // header + phase ruler + 4 PEs
    assert!(text.contains("phase  |"));
    let summary = dakc_sim::Timeline::new(&run.report).summary();
    assert!(summary.contains("busy split"));
}

#[test]
fn streaming_reader_feeds_the_counter() {
    use dakc_io::FastxReader;
    // Write a FASTQ in memory, stream it back in chunks, count, compare.
    let reads = synthetic(20).scaled(12).generate(9);
    let mut fq = Vec::new();
    for (i, r) in reads.iter().enumerate() {
        fq.extend_from_slice(format!("@r{i}\n").as_bytes());
        fq.extend_from_slice(r);
        fq.extend_from_slice(b"\n+\n");
        fq.extend(std::iter::repeat_n(b'I', r.len()));
        fq.push(b'\n');
    }
    let mut reader = FastxReader::new(fq.as_slice());
    let mut streamed = dakc_io::ReadSet::new();
    let total = reader
        .for_each_chunk(64, |chunk| {
            for r in chunk.iter() {
                streamed.push(r);
            }
        })
        .unwrap();
    assert_eq!(total, reads.len());
    let a = count_kmers_serial::<u64>(&reads, 21, CanonicalMode::Forward, false).counts;
    let b = count_kmers_serial::<u64>(&streamed, 21, CanonicalMode::Forward, false).counts;
    assert_eq!(a, b);
}
