//! Serve-subsystem integration tests: a query service stood up from a
//! distributed count must answer bit-identically to the count itself,
//! across rank counts, k widths, and canonicality modes — and a server
//! killed mid-session must surface as typed partial results, never a
//! hang.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use dakc::DakcConfig;
use dakc_baselines::count_kmers_serial;
use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSet, ReadSimConfig, RepeatProfile};
use dakc_kmer::{owner_pe, CanonicalMode, KmerCount, KmerWord};
use dakc_net::{NetError, NetTuning};
use dakc_serve::{
    build_shards, start_cluster, start_cluster_replicated, shard_path, write_shard,
    ClusterChaos, LookupResult, ServeError, Shard,
};
use dakc_sort::RadixKey;

fn workload(seed: u64) -> ReadSet {
    let genome = generate_genome(
        &GenomeSpec { bases: 4_000, repeats: Some(RepeatProfile::aatgg(0.10)) },
        seed,
    );
    simulate_reads(
        &genome,
        &ReadSimConfig { read_len: 100, num_reads: 220, error_rate: 0.01, both_strands: false },
        seed,
    )
}

fn reference<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    mode: CanonicalMode,
) -> Vec<KmerCount<W>> {
    count_kmers_serial::<W>(reads, k, mode, false).counts
}

/// Builds shards, serves them, and checks every reference k-mer's count
/// (batched at an odd size so batches straddle owner groups), a handful
/// of absent keys, the merged histogram, and the merged top-N.
fn serve_agrees<W: KmerWord + RadixKey + Send + 'static>(
    ranks: usize,
    k: usize,
    mode: CanonicalMode,
) {
    let reads = workload(0xD5EE + k as u64);
    let mut cfg = DakcConfig::paper_defaults(k);
    cfg.canonical = mode;
    let truth = reference::<W>(&reads, k, mode);
    assert!(!truth.is_empty(), "workload produced no k-mers");

    let shards = build_shards::<W>(&reads, &cfg, ranks).expect("build shards");
    assert_eq!(shards.len(), ranks);
    let total: u64 = shards.iter().map(|s| s.meta().n_records).sum();
    assert_eq!(total, truth.len() as u64, "shards must partition the table");
    for (r, s) in shards.iter().enumerate() {
        for (w, _) in s.iter() {
            assert_eq!(owner_pe(w, ranks), r, "record on wrong shard");
        }
    }

    let mut cluster =
        start_cluster(shards, NetTuning::default().with_timeout(Duration::from_secs(30)), None)
            .expect("start cluster");
    assert_eq!(cluster.client.k(), k);
    assert_eq!(cluster.client.canonical(), mode == CanonicalMode::Canonical);

    let keys: Vec<W> = truth.iter().map(|c| c.kmer).collect();
    for chunk in keys.chunks(777) {
        let out = cluster.client.lookup_batch(chunk).expect("lookup");
        assert!(out.complete(), "no server should be unavailable");
        for (key, res) in chunk.iter().zip(&out.results) {
            let want = truth[truth.binary_search_by_key(key, |c| c.kmer).unwrap()].count;
            assert_eq!(*res, LookupResult::Count(want), "count mismatch for {key:?}");
        }
    }

    // Absent keys answer zero, not an error.
    let present: HashSet<W> = keys.iter().copied().collect();
    let absent: Vec<W> = (0..200u64)
        .map(|i| W::from_u128(i as u128 * 7 + 1))
        .filter(|w| !present.contains(w))
        .collect();
    let out = cluster.client.lookup_batch(&absent).expect("absent lookup");
    assert!(out.results.iter().all(|r| *r == LookupResult::Count(0)));

    // Histogram: merged across shards == spectrum of the serial truth.
    let hist = cluster.client.histogram(16).expect("histogram");
    assert!(hist.unavailable.is_empty());
    let mut want = vec![0u64; 17];
    for c in &truth {
        let b = (c.count as usize - 1).min(16);
        want[b] += 1;
    }
    assert_eq!(hist.value, want);

    // Top-N: merged across shards == top of the serial truth.
    let top = cluster.client.top_n(12).expect("top_n");
    assert!(top.unavailable.is_empty());
    let mut by_count = truth.clone();
    by_count.sort_by(|a, b| b.count.cmp(&a.count).then(a.kmer.cmp(&b.kmer)));
    by_count.truncate(12);
    assert_eq!(top.value, by_count);

    let (metrics, outcomes) = cluster.shutdown().expect("shutdown");
    assert!(outcomes.iter().all(|o| o.is_ok()), "servers must exit cleanly: {outcomes:?}");
    let served: u64 = outcomes.iter().map(|o| o.as_ref().unwrap().lookups).sum();
    assert_eq!(served, (keys.len() + absent.len()) as u64);
    assert_eq!(
        metrics.counter("serve.lookups"),
        (keys.len() + absent.len()) as u64,
        "client must count its lookups"
    );
    assert!(
        metrics.histogram("flow.serve.batch_s").is_some(),
        "batch latency histogram must exist"
    );
}

#[test]
fn serve_matches_count_u64_k15() {
    for ranks in [1, 2, 4] {
        serve_agrees::<u64>(ranks, 15, CanonicalMode::Forward);
        serve_agrees::<u64>(ranks, 15, CanonicalMode::Canonical);
    }
}

#[test]
fn serve_matches_count_u64_k31() {
    for ranks in [1, 2, 4] {
        serve_agrees::<u64>(ranks, 31, CanonicalMode::Forward);
        serve_agrees::<u64>(ranks, 31, CanonicalMode::Canonical);
    }
}

#[test]
fn serve_matches_count_u128_k33() {
    for ranks in [1, 2, 4] {
        serve_agrees::<u128>(ranks, 33, CanonicalMode::Forward);
        serve_agrees::<u128>(ranks, 33, CanonicalMode::Canonical);
    }
}

/// Shard files round-trip through disk: what `write_shard` persists,
/// `Shard::load` reads back bit-identically — the same loader the
/// server boots from.
#[test]
fn shard_files_roundtrip_via_disk() {
    let reads = workload(0xF11E);
    let cfg = DakcConfig::paper_defaults(21);
    let shards = build_shards::<u64>(&reads, &cfg, 3).expect("build");
    let dir = std::env::temp_dir().join(format!("dakc-it-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (r, s) in shards.iter().enumerate() {
        let counts: Vec<KmerCount<u64>> =
            s.iter().map(|(w, c)| KmerCount::new(w, c)).collect();
        let path = shard_path(&dir, r, 3);
        write_shard(&path, &counts, 21, false, r, 3).expect("write");
        let back = Shard::<u64>::load(&path).expect("load");
        assert_eq!(back.meta().n_records, s.meta().n_records);
        for (w, c) in s.iter() {
            assert_eq!(back.get(w), Some(c));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A server chaos-killed mid-session degrades to typed partial results
/// within the collective deadline: its keys come back
/// `Unavailable { rank }`, live shards keep answering correctly, later
/// batches fail the dead rank immediately, and the server thread's own
/// verdict is the injected death — never a hang, never a panic.
#[test]
fn chaos_killed_server_yields_typed_partial_results() {
    const RANKS: usize = 4;
    const DEAD: usize = 2;
    let reads = workload(0xDEAD);
    let cfg = DakcConfig::paper_defaults(31);
    let truth = reference::<u64>(&reads, 31, CanonicalMode::Forward);
    let shards = build_shards::<u64>(&reads, &cfg, RANKS).expect("build");
    let tuning = NetTuning::default().with_timeout(Duration::from_secs(2));
    let chaos =
        ClusterChaos { rank: DEAD, profile: format!("die:{DEAD}@25"), seed: 7 };
    let mut cluster = start_cluster(shards, tuning, Some(chaos)).expect("start");

    // Give the doomed server time to burn through its op budget.
    std::thread::sleep(Duration::from_millis(50));

    let keys: Vec<u64> = truth.iter().map(|c| c.kmer).collect();
    let t0 = Instant::now();
    let out = cluster.client.lookup_batch(&keys).expect("lookup must not error out");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "partial results must arrive within the collective deadline"
    );
    assert_eq!(out.unavailable, vec![DEAD], "exactly the killed rank is unavailable");
    for (key, res) in keys.iter().zip(&out.results) {
        let want = truth[truth.binary_search_by_key(key, |c| c.kmer).unwrap()].count;
        if owner_pe(*key, RANKS) == DEAD {
            assert_eq!(*res, LookupResult::Unavailable { rank: DEAD });
        } else {
            assert_eq!(*res, LookupResult::Count(want));
        }
    }
    assert_eq!(cluster.client.dead_ranks(), vec![DEAD]);

    // A later batch fails the dead rank's keys instantly — no second wait.
    let t1 = Instant::now();
    let again = cluster.client.lookup_batch(&keys[..500.min(keys.len())]).expect("relookup");
    assert!(t1.elapsed() < Duration::from_secs(1), "dead rank must be remembered");
    assert!(again.unavailable.iter().all(|&r| r == DEAD));

    let (_, outcomes) = cluster.shutdown().expect("shutdown");
    for (rank, o) in outcomes.iter().enumerate() {
        if rank == DEAD {
            assert!(
                matches!(o, Err(ServeError::Net(NetError::Injected { .. }))),
                "killed server must report its injected death, got {o:?}"
            );
        } else {
            assert!(o.is_ok(), "live server {rank} must exit cleanly: {o:?}");
        }
    }
}

/// With `--replicas 2`-style replication, a chaos-killed server does
/// NOT cost any answers: the dead owner's keys fail over to the
/// successor holding the replica shard, the batch comes back complete
/// and correct, the failover is counted and latency-traced, and the
/// aggregates (histogram, top-N) also merge over all owners via the
/// `_OWNER` redirect — zero `Unavailable` anywhere.
#[test]
fn replicated_cluster_fails_over_a_killed_server_with_complete_results() {
    const RANKS: usize = 4;
    const DEAD: usize = 2;
    let reads = workload(0xFA11);
    let cfg = DakcConfig::paper_defaults(31);
    let truth = reference::<u64>(&reads, 31, CanonicalMode::Forward);
    let shards = build_shards::<u64>(&reads, &cfg, RANKS).expect("build");
    let tuning = NetTuning::default().with_timeout(Duration::from_secs(2));
    let chaos = ClusterChaos { rank: DEAD, profile: format!("die:{DEAD}@25"), seed: 7 };
    let mut cluster =
        start_cluster_replicated(shards, tuning, Some(chaos), 2).expect("start");
    assert_eq!(cluster.client.replicas(), 2);

    // Give the doomed server time to burn through its op budget.
    std::thread::sleep(Duration::from_millis(50));

    let keys: Vec<u64> = truth.iter().map(|c| c.kmer).collect();
    let out = cluster.client.lookup_batch(&keys).expect("lookup");
    assert!(out.complete(), "replication must absorb the death: {:?}", out.unavailable);
    for (key, res) in keys.iter().zip(&out.results) {
        let want = truth[truth.binary_search_by_key(key, |c| c.kmer).unwrap()].count;
        assert_eq!(*res, LookupResult::Count(want), "failover answer for {key:#x}");
    }
    assert_eq!(cluster.client.dead_ranks(), vec![DEAD], "the holder is still marked dead");

    // Later batches route straight to the replica — fast and complete.
    let t1 = Instant::now();
    let again = cluster.client.lookup_batch(&keys[..500.min(keys.len())]).expect("relookup");
    assert!(again.complete());
    assert!(t1.elapsed() < Duration::from_secs(1), "no second deadline wait");

    // Aggregates merge every owner partition exactly once, with the
    // dead owner's shard read from its replica holder.
    let hist = cluster.client.histogram(16).expect("histogram");
    assert!(hist.unavailable.is_empty(), "histogram must cover all owners");
    let mut want = vec![0u64; 17];
    for c in &truth {
        want[(c.count as usize - 1).min(16)] += 1;
    }
    assert_eq!(hist.value, want);
    let top = cluster.client.top_n(8).expect("top_n");
    assert!(top.unavailable.is_empty());

    let (metrics, outcomes) = cluster.shutdown().expect("shutdown");
    assert!(metrics.counter("serve.failovers") > 0, "failovers must be counted");
    assert!(
        metrics.histogram("flow.serve.failover_s").is_some(),
        "failover latency must be flow-traced"
    );
    for (rank, o) in outcomes.iter().enumerate() {
        if rank == DEAD {
            assert!(matches!(o, Err(ServeError::Net(NetError::Injected { .. }))));
        } else {
            assert!(o.is_ok(), "live server {rank} must exit cleanly: {o:?}");
        }
    }
}
