//! Determinism and reproducibility guarantees across the whole stack:
//! identical seeds and configurations must produce bit-identical datasets,
//! histograms and simulator reports.

use dakc::{count_kmers_sim, DakcConfig};
use dakc_baselines::{count_kmers_bsp_sim, BspConfig};
use dakc_io::datasets::synthetic;
use dakc_sim::MachineConfig;

#[test]
fn dataset_generation_is_reproducible() {
    let ds = synthetic(22).scaled(12);
    let a = ds.generate(123);
    let b = ds.generate(123);
    assert_eq!(a, b);
    let c = ds.generate(124);
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn dakc_sim_is_bit_deterministic() {
    let reads = synthetic(21).scaled(12).generate(7);
    let machine = MachineConfig::phoenix_intel(2);
    let cfg = DakcConfig::scaled_defaults(31);
    let a = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
    let b = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.report.total_time.to_bits(), b.report.total_time.to_bits());
    assert_eq!(a.report.pes, b.report.pes);
    assert_eq!(a.report.phase_time, b.report.phase_time);
}

#[test]
fn bsp_sim_is_bit_deterministic() {
    let reads = synthetic(21).scaled(12).generate(9);
    let machine = MachineConfig::phoenix_intel(2);
    let mut cfg = BspConfig::pakman_star(31);
    cfg.batch = 8_000;
    let a = count_kmers_bsp_sim::<u64>(&reads, &cfg, &machine).unwrap();
    let b = count_kmers_bsp_sim::<u64>(&reads, &cfg, &machine).unwrap();
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.report.total_time.to_bits(), b.report.total_time.to_bits());
    assert_eq!(a.rounds, b.rounds);
}

#[test]
fn results_are_independent_of_pe_count() {
    // The histogram (not the timing) must not depend on the machine shape.
    let reads = synthetic(20).scaled(10).generate(5);
    let cfg = DakcConfig::scaled_defaults(31);
    let base = count_kmers_sim::<u64>(&reads, &cfg, &MachineConfig::test_machine(1, 1))
        .unwrap()
        .counts;
    for (nodes, ppn) in [(1, 4), (2, 3), (4, 6), (9, 1)] {
        let run =
            count_kmers_sim::<u64>(&reads, &cfg, &MachineConfig::test_machine(nodes, ppn)).unwrap();
        assert_eq!(run.counts, base, "{nodes}x{ppn}");
    }
}

#[test]
fn results_are_independent_of_aggregation_parameters() {
    let reads = synthetic(20).scaled(10).generate(6);
    let machine = MachineConfig::test_machine(2, 2);
    let base = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(31), &machine)
        .unwrap()
        .counts;
    for (c2, c3, c1, c0) in [(2, 16, 1, 64), (8, 100, 4, 256), (64, 50_000, 2048, 64 * 1024)] {
        let mut cfg = DakcConfig::scaled_defaults(31).with_l3();
        cfg.c2 = c2;
        cfg.c3 = c3;
        cfg.c1_packets = c1;
        cfg.c0_bytes = c0;
        let run = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
        assert_eq!(run.counts, base, "C2={c2} C3={c3} C1={c1} C0={c0}");
    }
}
