//! The paper's qualitative claims, asserted as tests at workspace scale:
//! synchronization counts, who-wins relationships, the L3 payoff on skew,
//! and the model's structural predictions.

use dakc::{count_kmers_sim, DakcConfig};
use dakc_baselines::{count_kmers_bsp_sim, BspConfig};
use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSet, ReadSimConfig, RepeatProfile};
use dakc_model::closed_forms;
use dakc_sim::MachineConfig;

fn workload(kmers_target: usize, seed: u64, repeat_fraction: f64) -> ReadSet {
    // Few long arrays rather than RepeatProfile::aatgg's 32: the genomes
    // here are only a few kb, and an array shorter than k contains no
    // whole k-mer, i.e. no heavy hitter at all.
    let repeats = (repeat_fraction > 0.0).then(|| RepeatProfile {
        unit: b"AATGG".to_vec(),
        fraction: repeat_fraction,
        arrays: 4,
    });
    let genome_bases = (kmers_target / 40).max(1_000);
    let genome = generate_genome(&GenomeSpec { bases: genome_bases, repeats }, seed);
    let read_len = 150;
    let num_reads = kmers_target / (read_len - 30);
    simulate_reads(
        &genome,
        &ReadSimConfig { read_len, num_reads, error_rate: 0.002, both_strands: false },
        seed,
    )
}

/// §III: DAKC needs a constant number of global synchronizations (one
/// explicit barrier between phases); BSP's count grows with input size.
#[test]
fn sync_counts_constant_vs_growing() {
    let machine = MachineConfig::phoenix_intel(2);
    let small = workload(40_000, 1, 0.0);
    let large = workload(160_000, 1, 0.0);

    let cfg = DakcConfig::scaled_defaults(31);
    let d_small = count_kmers_sim::<u64>(&small, &cfg, &machine).unwrap();
    let d_large = count_kmers_sim::<u64>(&large, &cfg, &machine).unwrap();
    assert_eq!(d_small.report.barriers_completed, 1);
    assert_eq!(d_large.report.barriers_completed, 1, "DAKC: constant syncs");

    let mut bsp = BspConfig::pakman_star(31);
    bsp.batch = 600;
    let b_small = count_kmers_bsp_sim::<u64>(&small, &bsp, &machine).unwrap();
    let b_large = count_kmers_bsp_sim::<u64>(&large, &bsp, &machine).unwrap();
    assert!(
        b_large.report.barriers_completed > b_small.report.barriers_completed,
        "BSP: syncs grow with input ({} vs {})",
        b_large.report.barriers_completed,
        b_small.report.barriers_completed
    );
}

/// Fig 7's headline: DAKC beats both BSP baselines in the scaling region —
/// i.e. where the batch size forces multiple exchange rounds (Eq 1). The
/// batch here keeps the per-PE round count at ~4, the regime the paper's
/// evaluation sits in.
#[test]
fn dakc_beats_bsp_baselines() {
    let reads = workload(200_000, 2, 0.0);
    let mut machine = MachineConfig::phoenix_intel(4);
    machine.pes_per_node = 6;

    let d = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(31), &machine)
        .unwrap()
        .report
        .total_time;
    let mut pakman = BspConfig::pakman_star(31);
    pakman.batch = 2048;
    let mut hysortk = BspConfig::hysortk(31);
    hysortk.batch = 2048;
    let p = count_kmers_bsp_sim::<u64>(&reads, &pakman, &machine)
        .unwrap()
        .report
        .total_time;
    let h = count_kmers_bsp_sim::<u64>(&reads, &hysortk, &machine)
        .unwrap()
        .report
        .total_time;
    assert!(p / d > 1.5, "PakMan*/DAKC = {:.2} should exceed 1.5", p / d);
    assert!(h / d > 1.5, "HySortK/DAKC = {:.2} should exceed 1.5", h / d);
}

/// §VI-G: on skewed (heavy-hitter) data, the L3 layer slashes both the
/// communication volume and the owner-side load imbalance.
#[test]
fn l3_compresses_heavy_hitters_and_rebalances() {
    let reads = workload(120_000, 3, 0.2);
    let mut machine = MachineConfig::phoenix_intel(8);
    machine.pes_per_node = 6;

    let without = count_kmers_sim::<u64>(
        &reads,
        &DakcConfig::scaled_defaults(31).l0_l1_only(),
        &machine,
    )
    .unwrap();
    let with = count_kmers_sim::<u64>(
        &reads,
        &DakcConfig::scaled_defaults(31).with_l3(),
        &machine,
    )
    .unwrap();
    assert_eq!(without.counts, with.counts);

    assert!(
        with.total_agg().occurrences_compressed > 0,
        "L3 must pre-accumulate something"
    );
    assert!(
        with.report.remote_bytes() < without.report.remote_bytes(),
        "L3 must reduce wire volume: {} vs {}",
        with.report.remote_bytes(),
        without.report.remote_bytes()
    );
    assert!(
        with.load_imbalance() < without.load_imbalance(),
        "L3 must relieve the heavy owner's data volume: {:.2} vs {:.2}",
        with.load_imbalance(),
        without.load_imbalance()
    );
    assert!(
        with.report.total_time < without.report.total_time,
        "L3 must be faster on skewed data"
    );
}

/// §VI-G's other half: on uniform data L2 helps (~2×) but L3 adds nothing.
/// Run at the paper's real node shape (24 cores/node): the per-item
/// software overhead L2 amortizes scales with how thinly node resources
/// are shared.
#[test]
fn l2_helps_uniform_data_l3_does_not() {
    let reads = workload(120_000, 4, 0.0);
    let machine = MachineConfig::phoenix_intel(4);

    let l01 = count_kmers_sim::<u64>(
        &reads,
        &DakcConfig::scaled_defaults(31).l0_l1_only(),
        &machine,
    )
    .unwrap()
    .report
    .total_time;
    let l02 = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(31), &machine)
        .unwrap()
        .report
        .total_time;
    let l03 = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(31).with_l3(), &machine)
        .unwrap()
        .report
        .total_time;
    // Measured ≈1.3–1.5× depending on machine shape (paper: ≈2×; see
    // EXPERIMENTS.md on the conservative per-item cost estimate).
    assert!(l01 / l02 > 1.25, "L2 speedup {:.2} should be substantial", l01 / l02);
    assert!(
        (l02 / l03 - 1.0).abs() < 0.35,
        "L3 should be ~neutral on uniform data: {:.2}",
        l02 / l03
    );
}

/// Fig 8's mechanism: under a tight node budget the heavyweight baselines
/// OOM while DAKC completes.
#[test]
fn memory_budgets_reproduce_oom_ordering() {
    let reads = workload(300_000, 5, 0.0);
    let mut machine = MachineConfig::phoenix_intel(2);
    machine.pes_per_node = 6;
    // Budget sized between DAKC's ~1x-of-received footprint (~8 B/k-mer)
    // and HySortK's ~4.5x of 12 B/k-mer pairs.
    machine.node_memory = 8 * (reads.total_bases() as u64);

    let d = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(31), &machine);
    assert!(d.is_ok(), "DAKC should fit: {:?}", d.err());

    let h = count_kmers_bsp_sim::<u64>(&reads, &BspConfig::hysortk(31), &machine);
    assert!(
        matches!(h, Err(dakc_sim::SimError::Oom(_))),
        "HySortK should OOM under this budget"
    );
}

/// Eq 8 at the workspace's own machine constants: FA-BSP ≤ BSP always.
#[test]
fn closed_forms_hold_with_machine_constants() {
    let m = MachineConfig::phoenix_intel(8);
    let tau = m.latency;
    let mu = m.mu();
    for mn in [1e6, 1e9] {
        for p in [8.0, 192.0, 6144.0] {
            assert!(closed_forms::bsp_minus_fabsp(tau, mu, mn, p, 1e6) >= -1e-12);
        }
    }
}

/// §VI-B: inside one node, DAKC's traffic is pure memcpy (no NIC bytes).
#[test]
fn single_node_traffic_is_all_local() {
    let reads = workload(50_000, 6, 0.0);
    let machine = MachineConfig::phoenix_intel(1);
    let run = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(31), &machine).unwrap();
    assert_eq!(run.report.remote_bytes(), 0);
    assert!(run.report.local_bytes() > 0);
}
