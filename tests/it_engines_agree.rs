//! Cross-engine agreement: every counting engine in the workspace — the
//! serial reference, the threaded engines, the simulated DAKC, and every
//! BSP baseline — must produce the identical histogram on identical input.

use dakc::{count_kmers_sim, count_kmers_threaded, DakcConfig};
use dakc_baselines::{
    count_kmers_bsp_sim, count_kmers_bsp_threaded, count_kmers_kmc3, count_kmers_serial,
    BspConfig, Kmc3Config, SortBackend,
};
use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSet, ReadSimConfig, RepeatProfile};
use dakc_kmer::{CanonicalMode, KmerCount};
use dakc_sim::MachineConfig;

fn workload(seed: u64, skewed: bool) -> ReadSet {
    let repeats = skewed.then(|| RepeatProfile::aatgg(0.15));
    let genome = generate_genome(&GenomeSpec { bases: 6_000, repeats }, seed);
    simulate_reads(
        &genome,
        &ReadSimConfig {
            read_len: 120,
            num_reads: 400,
            error_rate: 0.01,
            both_strands: false,
        },
        seed,
    )
}

fn reference(reads: &ReadSet, k: usize, mode: CanonicalMode) -> Vec<KmerCount<u64>> {
    count_kmers_serial::<u64>(reads, k, mode, false).counts
}

#[test]
fn all_engines_agree_on_uniform_data() {
    let reads = workload(1, false);
    let k = 21;
    let want = reference(&reads, k, CanonicalMode::Forward);
    let machine = MachineConfig::test_machine(3, 2);

    let dakc = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(k), &machine).unwrap();
    assert_eq!(dakc.counts, want, "DAKC sim");

    let threaded = count_kmers_threaded::<u64>(&reads, k, CanonicalMode::Forward, 5, None);
    assert_eq!(threaded.counts, want, "DAKC threaded");

    let pakman = count_kmers_bsp_sim::<u64>(&reads, &BspConfig::pakman_star(k), &machine).unwrap();
    assert_eq!(pakman.counts, want, "PakMan*");

    let hysortk = count_kmers_bsp_sim::<u64>(&reads, &BspConfig::hysortk(k), &machine).unwrap();
    assert_eq!(hysortk.counts, want, "HySortK");

    let qsort = count_kmers_bsp_sim::<u64>(&reads, &BspConfig::pakman_qsort(k), &machine).unwrap();
    assert_eq!(qsort.counts, want, "PakMan qsort");

    let kmc3 = count_kmers_kmc3::<u64>(&reads, &Kmc3Config::defaults(k, 4));
    assert_eq!(kmc3.counts, want, "KMC3");

    let bsp_t = count_kmers_bsp_threaded::<u64>(
        &reads,
        k,
        CanonicalMode::Forward,
        4,
        2_000,
        SortBackend::RadixHybrid,
    );
    assert_eq!(bsp_t.counts, want, "BSP threaded");
}

#[test]
fn all_engines_agree_on_skewed_data_with_l3() {
    let reads = workload(2, true);
    let k = 15;
    let want = reference(&reads, k, CanonicalMode::Forward);
    let machine = MachineConfig::test_machine(2, 3);

    let dakc_l3 =
        count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(k).with_l3(), &machine)
            .unwrap();
    assert_eq!(dakc_l3.counts, want, "DAKC sim + L3");
    assert!(
        dakc_l3.total_agg().heavy_pairs > 0,
        "the skewed input must exercise the HEAVY path"
    );

    let threaded_l3 = count_kmers_threaded::<u64>(&reads, k, CanonicalMode::Forward, 4, Some(512));
    assert_eq!(threaded_l3.counts, want, "DAKC threaded + L3");

    let l0l1 =
        count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(k).l0_l1_only(), &machine)
            .unwrap();
    assert_eq!(l0l1.counts, want, "DAKC L0-L1 ablation");
}

#[test]
fn engines_agree_under_canonical_counting() {
    let reads = workload(3, false);
    let k = 17;
    let want = reference(&reads, k, CanonicalMode::Canonical);

    let mut cfg = DakcConfig::scaled_defaults(k);
    cfg.canonical = CanonicalMode::Canonical;
    let machine = MachineConfig::test_machine(2, 2);
    let dakc = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
    assert_eq!(dakc.counts, want);

    let threaded = count_kmers_threaded::<u64>(&reads, k, CanonicalMode::Canonical, 3, None);
    assert_eq!(threaded.counts, want);

    let kmc3 = count_kmers_kmc3::<u64>(
        &reads,
        &Kmc3Config {
            canonical: CanonicalMode::Canonical,
            ..Kmc3Config::defaults(k, 3)
        },
    );
    assert_eq!(kmc3.counts, want);
}

#[test]
fn engines_agree_across_protocols() {
    let reads = workload(4, false);
    let k = 19;
    let want = reference(&reads, k, CanonicalMode::Forward);
    let machine = MachineConfig::test_machine(9, 1); // 9 PEs: a 3x3 2D grid

    for proto in [
        dakc_conveyors::Protocol::OneD,
        dakc_conveyors::Protocol::TwoD,
        dakc_conveyors::Protocol::ThreeD,
    ] {
        let mut cfg = DakcConfig::scaled_defaults(k);
        cfg.protocol = proto;
        let run = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
        assert_eq!(run.counts, want, "protocol {proto:?}");
    }
}

#[test]
fn engines_agree_for_u128_large_k() {
    let reads = workload(5, false);
    let k = 41; // > 32: needs the 128-bit extension
    let want = count_kmers_serial::<u128>(&reads, k, CanonicalMode::Forward, false).counts;

    let machine = MachineConfig::test_machine(2, 2);
    let dakc = count_kmers_sim::<u128>(&reads, &DakcConfig::scaled_defaults(k), &machine).unwrap();
    assert_eq!(dakc.counts, want, "DAKC sim u128");

    let threaded = count_kmers_threaded::<u128>(&reads, k, CanonicalMode::Forward, 4, None);
    assert_eq!(threaded.counts, want, "threaded u128");

    let bsp = count_kmers_bsp_sim::<u128>(&reads, &BspConfig::pakman_star(k), &machine).unwrap();
    assert_eq!(bsp.counts, want, "BSP u128");
}

#[test]
fn reads_with_ambiguity_codes_agree() {
    let mut reads = ReadSet::new();
    reads.push(b"ACGTNNACGTACGGTTACANGGTACGATCAGT");
    reads.push(b"NNNN");
    reads.push(b"ACGTACGGTTACAGGGTACGATCAGTACCAGT");
    let k = 9;
    let want = reference(&reads, k, CanonicalMode::Forward);
    let machine = MachineConfig::test_machine(2, 1);
    let dakc = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(k), &machine).unwrap();
    assert_eq!(dakc.counts, want);
    let kmc3 = count_kmers_kmc3::<u64>(&reads, &Kmc3Config::defaults(k, 2));
    assert_eq!(kmc3.counts, want);
}
