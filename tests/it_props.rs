//! Property-based integration tests: for arbitrary read sets and
//! configurations, the distributed engines agree with the serial
//! reference and conserve k-mer mass.

use dakc::{count_kmers_sim, count_kmers_threaded, count_kmers_threaded_opts, DakcConfig, ThreadedOpts};
use dakc_baselines::{count_kmers_bsp_sim, count_kmers_serial, BspConfig};
use dakc_io::ReadSet;
use dakc_kmer::{
    for_each_span, kmers_of_read, pack_span, unpack_spans, CanonicalMode, SPAN_MAX_BASES,
};
use dakc_sim::MachineConfig;
use proptest::prelude::*;

fn read_set_strategy() -> impl Strategy<Value = ReadSet> {
    prop::collection::vec(
        prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T', b'N']), 0..80),
        0..40,
    )
    .prop_map(|reads| {
        let mut rs = ReadSet::new();
        for r in &reads {
            rs.push(r);
        }
        rs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dakc_sim_matches_serial(reads in read_set_strategy(), k in 2usize..12, nodes in 1usize..4, ppn in 1usize..4) {
        let want = count_kmers_serial::<u64>(&reads, k, CanonicalMode::Forward, false).counts;
        let machine = MachineConfig::test_machine(nodes, ppn);
        let got = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(k), &machine).unwrap();
        prop_assert_eq!(got.counts, want);
    }

    #[test]
    fn dakc_l3_matches_serial(reads in read_set_strategy(), k in 2usize..12) {
        let want = count_kmers_serial::<u64>(&reads, k, CanonicalMode::Forward, false).counts;
        let machine = MachineConfig::test_machine(2, 2);
        let mut cfg = DakcConfig::scaled_defaults(k).with_l3();
        cfg.c3 = 8; // tiny C3 to force many L3 flushes
        cfg.c2 = 4;
        let got = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
        prop_assert_eq!(got.counts, want);
    }

    #[test]
    fn bsp_matches_serial(reads in read_set_strategy(), k in 2usize..12, batch in 8usize..200) {
        let want = count_kmers_serial::<u64>(&reads, k, CanonicalMode::Forward, false).counts;
        let machine = MachineConfig::test_machine(2, 2);
        let mut cfg = BspConfig::pakman_star(k);
        cfg.batch = batch;
        let got = count_kmers_bsp_sim::<u64>(&reads, &cfg, &machine).unwrap();
        prop_assert_eq!(got.counts, want);
    }

    #[test]
    fn threaded_matches_serial(reads in read_set_strategy(), k in 2usize..12, threads in 1usize..6) {
        let want = count_kmers_serial::<u64>(&reads, k, CanonicalMode::Forward, false).counts;
        let got = count_kmers_threaded::<u64>(&reads, k, CanonicalMode::Forward, threads, None);
        prop_assert_eq!(got.counts, want);
    }

    #[test]
    fn kmer_mass_is_conserved(reads in read_set_strategy(), k in 2usize..12) {
        // Total occurrences across the histogram == total extractable k-mers.
        let machine = MachineConfig::test_machine(2, 1);
        let run = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(k), &machine).unwrap();
        let mass: u64 = run.counts.iter().map(|c| c.count as u64).sum();
        prop_assert_eq!(mass as usize, reads.total_kmers(k));
    }
}

// The SPSC-lane engine is exercised harder (wide k range incl. u128,
// every thread shape, both canonical modes, tiny lane batches, L3 on and
// off) with fewer cases per property — the product space carries the
// coverage.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn threaded_bit_identical_across_shapes(
        reads in read_set_strategy(),
        canonical in any::<bool>(),
        route_batch in prop::sample::select(vec![7usize, 1024]),
        l3_cap in prop::sample::select(vec![0usize, 8, 48]),
    ) {
        let l3 = (l3_cap != 0).then_some(l3_cap);
        let mode = if canonical { CanonicalMode::Canonical } else { CanonicalMode::Forward };
        let opts = ThreadedOpts { route_batch, ..ThreadedOpts::default() };
        for k in [15usize, 31] {
            let want = count_kmers_serial::<u64>(&reads, k, mode, false).counts;
            for threads in [1usize, 2, 4, 7] {
                let got = count_kmers_threaded_opts::<u64>(&reads, k, mode, threads, l3, &opts);
                prop_assert_eq!(&got.counts, &want, "k={} threads={}", k, threads);
            }
        }
        // k > 32 takes the u128 word path.
        let want = count_kmers_serial::<u128>(&reads, 33, mode, false).counts;
        for threads in [1usize, 2, 4, 7] {
            let got = count_kmers_threaded_opts::<u128>(&reads, 33, mode, threads, l3, &opts);
            prop_assert_eq!(&got.counts, &want, "k=33 threads={}", threads);
        }
    }

    // Super-k-mer routing (minimizer ownership, packed span lanes, owner-
    // side expansion) must be invisible in the output: bit-identical to
    // the serial reference for every thread shape, word width, and
    // strand mode. The N-bearing strategy exercises non-ACGT breaks.
    #[test]
    fn threaded_superkmer_bit_identical_across_shapes(
        reads in read_set_strategy(),
        canonical in any::<bool>(),
    ) {
        let mode = if canonical { CanonicalMode::Canonical } else { CanonicalMode::Forward };
        let opts = ThreadedOpts { superkmer: Some(7), ..ThreadedOpts::default() };
        for k in [15usize, 31] {
            let want = count_kmers_serial::<u64>(&reads, k, mode, false).counts;
            for threads in [1usize, 2, 4] {
                let got = count_kmers_threaded_opts::<u64>(&reads, k, mode, threads, None, &opts);
                prop_assert_eq!(&got.counts, &want, "k={} threads={}", k, threads);
            }
        }
        let want = count_kmers_serial::<u128>(&reads, 33, mode, false).counts;
        for threads in [1usize, 2, 4] {
            let got = count_kmers_threaded_opts::<u128>(&reads, 33, mode, threads, None, &opts);
            prop_assert_eq!(&got.counts, &want, "k=33 threads={}", threads);
        }
    }
}

// Span wire codec: decomposing a read into super-k-mer spans, packing
// them, and unpacking must reproduce exactly the k-mer multiset of the
// read — non-ACGT bytes break spans but lose no flanking k-mers.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn span_codec_round_trips(
        reads in read_set_strategy(),
        k in 5usize..12,
        m in 1usize..5,
        canonical in any::<bool>(),
    ) {
        let mode = if canonical { CanonicalMode::Canonical } else { CanonicalMode::Forward };
        for r in reads.iter() {
            let mut want: Vec<u64> = kmers_of_read::<u64>(r, k, mode).collect();
            want.sort_unstable();
            let mut buf = Vec::new();
            for_each_span(r, k, m, canonical, |_mz, span| pack_span(&mut buf, span));
            let mut got: Vec<u64> = Vec::new();
            unpack_spans(&buf, k, canonical, &mut got).expect("pack -> unpack is lossless");
            got.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}

// A span longer than the u16 length prefix must split into overlapping
// records (overlap k-1) that still expand to the exact k-mer multiset —
// on the u128 word path.
#[test]
fn span_codec_splits_at_u16_boundary_u128() {
    let k = 33;
    let read = vec![b'A'; SPAN_MAX_BASES + 5_000]; // one poly-A super-k-mer
    let mut buf = Vec::new();
    let mut spans = 0usize;
    for_each_span(&read, k, 7, false, |_mz, span| {
        assert!(span.len() <= SPAN_MAX_BASES);
        spans += 1;
        pack_span(&mut buf, span);
    });
    assert!(spans >= 2, "span must split at the u16 boundary, got {spans} record(s)");
    let mut got: Vec<u128> = Vec::new();
    let sum = unpack_spans(&buf, k, false, &mut got).unwrap();
    let want: Vec<u128> = kmers_of_read::<u128>(&read, k, CanonicalMode::Forward).collect();
    assert_eq!(got, want);
    assert_eq!(sum.kmers as usize, want.len());
}
