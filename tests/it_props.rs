//! Property-based integration tests: for arbitrary read sets and
//! configurations, the distributed engines agree with the serial
//! reference and conserve k-mer mass.

use dakc::{count_kmers_sim, count_kmers_threaded, DakcConfig};
use dakc_baselines::{count_kmers_bsp_sim, count_kmers_serial, BspConfig};
use dakc_io::ReadSet;
use dakc_kmer::CanonicalMode;
use dakc_sim::MachineConfig;
use proptest::prelude::*;

fn read_set_strategy() -> impl Strategy<Value = ReadSet> {
    prop::collection::vec(
        prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T', b'N']), 0..80),
        0..40,
    )
    .prop_map(|reads| {
        let mut rs = ReadSet::new();
        for r in &reads {
            rs.push(r);
        }
        rs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dakc_sim_matches_serial(reads in read_set_strategy(), k in 2usize..12, nodes in 1usize..4, ppn in 1usize..4) {
        let want = count_kmers_serial::<u64>(&reads, k, CanonicalMode::Forward, false).counts;
        let machine = MachineConfig::test_machine(nodes, ppn);
        let got = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(k), &machine).unwrap();
        prop_assert_eq!(got.counts, want);
    }

    #[test]
    fn dakc_l3_matches_serial(reads in read_set_strategy(), k in 2usize..12) {
        let want = count_kmers_serial::<u64>(&reads, k, CanonicalMode::Forward, false).counts;
        let machine = MachineConfig::test_machine(2, 2);
        let mut cfg = DakcConfig::scaled_defaults(k).with_l3();
        cfg.c3 = 8; // tiny C3 to force many L3 flushes
        cfg.c2 = 4;
        let got = count_kmers_sim::<u64>(&reads, &cfg, &machine).unwrap();
        prop_assert_eq!(got.counts, want);
    }

    #[test]
    fn bsp_matches_serial(reads in read_set_strategy(), k in 2usize..12, batch in 8usize..200) {
        let want = count_kmers_serial::<u64>(&reads, k, CanonicalMode::Forward, false).counts;
        let machine = MachineConfig::test_machine(2, 2);
        let mut cfg = BspConfig::pakman_star(k);
        cfg.batch = batch;
        let got = count_kmers_bsp_sim::<u64>(&reads, &cfg, &machine).unwrap();
        prop_assert_eq!(got.counts, want);
    }

    #[test]
    fn threaded_matches_serial(reads in read_set_strategy(), k in 2usize..12, threads in 1usize..6) {
        let want = count_kmers_serial::<u64>(&reads, k, CanonicalMode::Forward, false).counts;
        let got = count_kmers_threaded::<u64>(&reads, k, CanonicalMode::Forward, threads, None);
        prop_assert_eq!(got.counts, want);
    }

    #[test]
    fn kmer_mass_is_conserved(reads in read_set_strategy(), k in 2usize..12) {
        // Total occurrences across the histogram == total extractable k-mers.
        let machine = MachineConfig::test_machine(2, 1);
        let run = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(k), &machine).unwrap();
        let mass: u64 = run.counts.iter().map(|c| c.count as u64).sum();
        prop_assert_eq!(mass as usize, reads.total_kmers(k));
    }
}
