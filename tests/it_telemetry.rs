//! Observability integration tests: the exported Chrome trace is valid
//! JSON with the promised tracks, timestamps are monotone per PE,
//! histogram merging is associative and count-conserving, and identical
//! simulated runs export byte-identical traces and metrics.

use dakc::{count_kmers_sim_traced, count_kmers_threaded_traced, DakcConfig};
use dakc_io::datasets::synthetic;
use dakc_kmer::CanonicalMode;
use dakc_sim::telemetry::json::{self, JsonValue};
use dakc_sim::telemetry::metrics::{Histogram, PCT_BOUNDS};
use dakc_sim::telemetry::{chrome_trace, Event};
use dakc_sim::{MachineConfig, TraceSink};
use proptest::prelude::*;

fn traced_sim_run() -> (Vec<Event>, String) {
    let reads = synthetic(21).scaled(14).generate(7);
    let machine = MachineConfig::test_machine(2, 3);
    let cfg = DakcConfig::scaled_defaults(15).with_l3();
    let mut sink = TraceSink::ring_default();
    let run = count_kmers_sim_traced::<u64>(&reads, &cfg, &machine, &mut sink).unwrap();
    assert!(!run.counts.is_empty());
    (sink.events(), run.report.metrics.to_json())
}

/// Events of a trace JSON document, with (name, ph, pid, tid, ts) pulled out.
fn trace_rows(doc: &str) -> Vec<(String, String, f64, f64, f64)> {
    let v = json::parse(doc).expect("trace must be valid JSON");
    let events = v.get("traceEvents").and_then(JsonValue::as_arr).expect("traceEvents array");
    events
        .iter()
        .map(|e| {
            (
                e.get("name").and_then(JsonValue::as_str).unwrap_or_default().to_string(),
                e.get("ph").and_then(JsonValue::as_str).expect("ph").to_string(),
                e.get("pid").and_then(JsonValue::as_f64).expect("pid"),
                e.get("tid").and_then(JsonValue::as_f64).unwrap_or(-1.0),
                e.get("ts").and_then(JsonValue::as_f64).unwrap_or(0.0),
            )
        })
        .collect()
}

#[test]
fn sim_chrome_trace_parses_with_expected_tracks() {
    let (events, _) = traced_sim_run();
    assert!(!events.is_empty());
    let doc = chrome_trace(&events, 3);
    let rows = trace_rows(&doc);

    // One thread_name metadata record per PE (6 PEs on 2 nodes x 3).
    let pe_tracks = rows.iter().filter(|r| r.1 == "M" && r.0 == "thread_name").count();
    assert_eq!(pe_tracks, 6);
    // Node (process) metadata for both nodes.
    let node_tracks = rows.iter().filter(|r| r.1 == "M" && r.0 == "process_name").count();
    assert_eq!(node_tracks, 2);
    // Counter tracks for queue depth and node memory exist.
    assert!(rows.iter().any(|r| r.1 == "C" && r.0.starts_with("queue_depth")));
    assert!(rows.iter().any(|r| r.1 == "C" && r.0 == "node_mem"));
    // Barrier slices are balanced per tid.
    for tid in 0..6 {
        let opens = rows.iter().filter(|r| r.1 == "B" && r.3 == tid as f64).count();
        let closes = rows.iter().filter(|r| r.1 == "E" && r.3 == tid as f64).count();
        assert_eq!(opens, closes, "unbalanced barrier slices on tid {tid}");
    }
    // At least one non-metadata event per PE.
    for pe in 0..6 {
        assert!(
            rows.iter().any(|r| r.1 != "M" && r.3 == pe as f64),
            "no events for pe {pe}"
        );
    }
}

#[test]
fn sim_trace_timestamps_are_monotone_per_pe() {
    let (events, _) = traced_sim_run();
    let mut last = [f64::NEG_INFINITY; 6];
    for e in &events {
        let pe = e.pe as usize;
        assert!(
            e.ts >= last[pe],
            "pe {pe}: ts {} after {}",
            e.ts,
            last[pe]
        );
        last[pe] = e.ts;
    }
}

#[test]
fn threaded_trace_timestamps_are_monotone_per_pe() {
    let reads = synthetic(21).scaled(14).generate(3);
    let run = count_kmers_threaded_traced::<u64>(
        &reads,
        15,
        CanonicalMode::Forward,
        3,
        Some(256),
        true,
    );
    let events = run.trace.expect("tracing requested");
    assert!(!events.is_empty());
    let mut last = [f64::NEG_INFINITY; 3];
    for e in &events {
        let pe = e.pe as usize;
        assert!(e.ts >= last[pe], "pe {pe} out of order");
        last[pe] = e.ts;
    }
    // The merged stream covers every worker.
    for pe in 0..3u32 {
        assert!(events.iter().any(|e| e.pe == pe), "no events for worker {pe}");
    }
    // And it parses as a Chrome trace.
    assert!(json::parse(&chrome_trace(&events, 3)).is_ok());
}

#[test]
fn identical_sim_runs_export_identical_artifacts() {
    let (ev_a, metrics_a) = traced_sim_run();
    let (ev_b, metrics_b) = traced_sim_run();
    assert_eq!(chrome_trace(&ev_a, 3), chrome_trace(&ev_b, 3));
    assert_eq!(metrics_a, metrics_b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn histogram_merge_is_associative_and_conserves_counts(
        xs in prop::collection::vec(0u32..120, 0..40),
        ys in prop::collection::vec(0u32..120, 0..40),
        zs in prop::collection::vec(0u32..120, 0..40),
    ) {
        let mk = |vals: &[u32]| {
            let mut h = Histogram::with_bounds(PCT_BOUNDS);
            for &v in vals {
                h.observe(v as f64);
            }
            h
        };
        let (a, b, c) = (mk(&xs), mk(&ys), mk(&zs));

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        prop_assert_eq!(&ab_c, &a_bc);
        prop_assert_eq!(ab_c.count() as usize, xs.len() + ys.len() + zs.len());
        let bucket_sum: u64 = ab_c.counts().iter().sum();
        prop_assert_eq!(bucket_sum, ab_c.count());
    }
}
