//! Observability integration tests: the exported Chrome trace is valid
//! JSON with the promised tracks, timestamps are monotone per PE,
//! histogram merging is associative and count-conserving, and identical
//! simulated runs export byte-identical traces and metrics.

use dakc::{count_kmers_sim_traced, count_kmers_threaded_traced, DakcConfig};
use dakc_io::datasets::synthetic;
use dakc_kmer::CanonicalMode;
use dakc_sim::telemetry::json::{self, JsonValue};
use dakc_sim::telemetry::metrics::{Histogram, LATENCY_BOUNDS, PCT_BOUNDS};
use dakc_sim::telemetry::{chrome_trace, Event};
use dakc_sim::{EventKind, MachineConfig, TraceSink};
use proptest::prelude::*;

fn traced_sim_run() -> (Vec<Event>, String) {
    let reads = synthetic(21).scaled(14).generate(7);
    let machine = MachineConfig::test_machine(2, 3);
    let cfg = DakcConfig::scaled_defaults(15).with_l3();
    let mut sink = TraceSink::ring_default();
    let run = count_kmers_sim_traced::<u64>(&reads, &cfg, &machine, &mut sink).unwrap();
    assert!(!run.counts.is_empty());
    (sink.events(), run.report.metrics.to_json())
}

/// Like [`traced_sim_run`] but with full-rate flow tracing, so every
/// packet carries a causal tag from L2 open to remote drain.
fn traced_flow_run() -> (Vec<Event>, String) {
    let reads = synthetic(21).scaled(14).generate(7);
    let machine = MachineConfig::test_machine(2, 3);
    let cfg = DakcConfig::scaled_defaults(15).with_l3().with_trace_sample(1);
    let mut sink = TraceSink::ring_default();
    let run = count_kmers_sim_traced::<u64>(&reads, &cfg, &machine, &mut sink).unwrap();
    assert!(!run.counts.is_empty());
    (sink.events(), run.report.metrics.to_json())
}

/// Events of a trace JSON document, with (name, ph, pid, tid, ts) pulled out.
fn trace_rows(doc: &str) -> Vec<(String, String, f64, f64, f64)> {
    let v = json::parse(doc).expect("trace must be valid JSON");
    let events = v.get("traceEvents").and_then(JsonValue::as_arr).expect("traceEvents array");
    events
        .iter()
        .map(|e| {
            (
                e.get("name").and_then(JsonValue::as_str).unwrap_or_default().to_string(),
                e.get("ph").and_then(JsonValue::as_str).expect("ph").to_string(),
                e.get("pid").and_then(JsonValue::as_f64).expect("pid"),
                e.get("tid").and_then(JsonValue::as_f64).unwrap_or(-1.0),
                e.get("ts").and_then(JsonValue::as_f64).unwrap_or(0.0),
            )
        })
        .collect()
}

#[test]
fn sim_chrome_trace_parses_with_expected_tracks() {
    let (events, _) = traced_sim_run();
    assert!(!events.is_empty());
    let doc = chrome_trace(&events, 3);
    let rows = trace_rows(&doc);

    // One thread_name metadata record per PE (6 PEs on 2 nodes x 3).
    let pe_tracks = rows.iter().filter(|r| r.1 == "M" && r.0 == "thread_name").count();
    assert_eq!(pe_tracks, 6);
    // Node (process) metadata for both nodes.
    let node_tracks = rows.iter().filter(|r| r.1 == "M" && r.0 == "process_name").count();
    assert_eq!(node_tracks, 2);
    // Counter tracks for queue depth and node memory exist.
    assert!(rows.iter().any(|r| r.1 == "C" && r.0.starts_with("queue_depth")));
    assert!(rows.iter().any(|r| r.1 == "C" && r.0 == "node_mem"));
    // Barrier slices are balanced per tid.
    for tid in 0..6 {
        let opens = rows.iter().filter(|r| r.1 == "B" && r.3 == tid as f64).count();
        let closes = rows.iter().filter(|r| r.1 == "E" && r.3 == tid as f64).count();
        assert_eq!(opens, closes, "unbalanced barrier slices on tid {tid}");
    }
    // At least one non-metadata event per PE.
    for pe in 0..6 {
        assert!(
            rows.iter().any(|r| r.1 != "M" && r.3 == pe as f64),
            "no events for pe {pe}"
        );
    }
}

#[test]
fn sim_trace_timestamps_are_monotone_per_pe() {
    let (events, _) = traced_sim_run();
    let mut last = [f64::NEG_INFINITY; 6];
    for e in &events {
        let pe = e.pe as usize;
        assert!(
            e.ts >= last[pe],
            "pe {pe}: ts {} after {}",
            e.ts,
            last[pe]
        );
        last[pe] = e.ts;
    }
}

#[test]
fn threaded_trace_timestamps_are_monotone_per_pe() {
    let reads = synthetic(21).scaled(14).generate(3);
    let run = count_kmers_threaded_traced::<u64>(
        &reads,
        15,
        CanonicalMode::Forward,
        3,
        Some(256),
        true,
    );
    let events = run.trace.expect("tracing requested");
    assert!(!events.is_empty());
    let mut last = [f64::NEG_INFINITY; 3];
    for e in &events {
        let pe = e.pe as usize;
        assert!(e.ts >= last[pe], "pe {pe} out of order");
        last[pe] = e.ts;
    }
    // The merged stream covers every worker.
    for pe in 0..3u32 {
        assert!(events.iter().any(|e| e.pe == pe), "no events for worker {pe}");
    }
    // And it parses as a Chrome trace.
    assert!(json::parse(&chrome_trace(&events, 3)).is_ok());
}

#[test]
fn every_flow_start_has_exactly_one_matching_finish() {
    let (events, metrics) = traced_flow_run();
    let mut sends = std::collections::HashMap::new();
    let mut recvs = std::collections::HashMap::new();
    for e in &events {
        match e.kind {
            EventKind::FlowSend { flow, .. } => *sends.entry(flow).or_insert(0u32) += 1,
            EventKind::FlowRecv { flow, .. } => *recvs.entry(flow).or_insert(0u32) += 1,
            _ => {}
        }
    }
    assert!(!sends.is_empty(), "full-rate sampling produced no flows");
    assert_eq!(sends.len(), recvs.len());
    for (flow, n) in &sends {
        assert_eq!(*n, 1, "flow {flow:#x} sent {n} times");
        assert_eq!(recvs.get(flow), Some(&1), "flow {flow:#x} unmatched");
    }
    // The counters agree with the event stream.
    let m = json::parse(&metrics).unwrap();
    let counter = |k: &str| m.get("counters").and_then(|c| c.get(k)).and_then(|v| v.as_f64());
    assert_eq!(counter("flow.opened"), Some(sends.len() as f64));
    assert_eq!(counter("flow.closed"), Some(recvs.len() as f64));
}

#[test]
fn flow_stage_residencies_are_nonnegative_and_telescope() {
    let (events, _) = traced_flow_run();
    let mut checked = 0;
    for e in &events {
        if let EventKind::FlowRecv { flow, l3_s, l2_s, l1_s, l0_s, net_s, drain_s, e2e_s, .. } =
            e.kind
        {
            for (stage, v) in
                [("l3", l3_s), ("l2", l2_s), ("l1", l1_s), ("l0", l0_s), ("net", net_s), ("drain", drain_s)]
            {
                assert!(v >= 0.0, "flow {flow:#x}: negative {stage} residency {v}");
            }
            let sum = l3_s + l2_s + l1_s + l0_s + net_s + drain_s;
            assert!(
                (sum - e2e_s).abs() <= 1e-12 + 1e-9 * e2e_s.abs(),
                "flow {flow:#x}: stages sum to {sum}, e2e is {e2e_s}"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no flows closed");
}

#[test]
fn identical_flow_traced_runs_export_identical_traces() {
    let (ev_a, metrics_a) = traced_flow_run();
    let (ev_b, metrics_b) = traced_flow_run();
    assert_eq!(chrome_trace(&ev_a, 3), chrome_trace(&ev_b, 3));
    assert_eq!(metrics_a, metrics_b);
    // Flow events survive into the Chrome export as paired s/f records.
    let doc = chrome_trace(&ev_a, 3);
    let rows = trace_rows(&doc);
    let starts = rows.iter().filter(|r| r.1 == "s").count();
    let finishes = rows.iter().filter(|r| r.1 == "f").count();
    assert!(starts > 0);
    assert_eq!(starts, finishes);
}

#[test]
fn threaded_flow_events_pair_and_telescope() {
    let reads = synthetic(21).scaled(14).generate(3);
    let opts = dakc::ThreadedOpts { trace: true, trace_sample: Some(1), ..Default::default() };
    let run =
        dakc::count_kmers_threaded_opts::<u64>(&reads, 15, CanonicalMode::Forward, 3, Some(256), &opts);
    let events = run.trace.expect("tracing requested");
    let sends: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::FlowSend { flow, .. } => Some(flow),
            _ => None,
        })
        .collect();
    assert!(!sends.is_empty(), "no flows sampled");
    for e in &events {
        if let EventKind::FlowRecv { flow, l2_s, drain_s, e2e_s, .. } = e.kind {
            assert!(sends.contains(&flow), "recv for unknown flow {flow:#x}");
            assert!(l2_s >= 0.0 && drain_s >= 0.0);
            assert!((l2_s + drain_s - e2e_s).abs() <= 1e-9);
        }
    }
    let recvs = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FlowRecv { .. }))
        .count();
    assert_eq!(recvs, sends.len(), "every send must be drained exactly once");
}

#[test]
fn identical_sim_runs_export_identical_artifacts() {
    let (ev_a, metrics_a) = traced_sim_run();
    let (ev_b, metrics_b) = traced_sim_run();
    assert_eq!(chrome_trace(&ev_a, 3), chrome_trace(&ev_b, 3));
    assert_eq!(metrics_a, metrics_b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn histogram_merge_is_associative_and_conserves_counts(
        xs in prop::collection::vec(0u32..120, 0..40),
        ys in prop::collection::vec(0u32..120, 0..40),
        zs in prop::collection::vec(0u32..120, 0..40),
    ) {
        let mk = |vals: &[u32]| {
            let mut h = Histogram::with_bounds(PCT_BOUNDS);
            for &v in vals {
                h.observe(v as f64);
            }
            h
        };
        let (a, b, c) = (mk(&xs), mk(&ys), mk(&zs));

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        prop_assert_eq!(&ab_c, &a_bc);
        prop_assert_eq!(ab_c.count() as usize, xs.len() + ys.len() + zs.len());
        let bucket_sum: u64 = ab_c.counts().iter().sum();
        prop_assert_eq!(bucket_sum, ab_c.count());
    }

    // The interpolated histogram quantile never leaves the bucket that
    // holds the exact (sorted-vector) quantile: its error is bounded by
    // one bucket width, and at the extremes it returns the exact min/max.
    #[test]
    fn histogram_quantile_brackets_naive_quantile(
        xs_us in prop::collection::vec(1u32..900_000, 1..200),
        q_ppm in 0u32..1_000_001,
    ) {
        // The vendored proptest has no f64 range strategy; derive floats
        // from integer microseconds (1us..0.9s) and parts-per-million.
        let mut xs: Vec<f64> = xs_us.iter().map(|&v| v as f64 * 1e-6).collect();
        let q = q_ppm as f64 * 1e-6;
        let mut h = Histogram::with_bounds(LATENCY_BOUNDS);
        for &v in &xs {
            h.observe(v);
        }
        xs.sort_by(f64::total_cmp);

        // Naive quantile: the ceil(q*n)-th smallest sample (rank method).
        let n = xs.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let exact = xs[rank - 1];

        let est = h.quantile(q).expect("non-empty");
        // Both values must fall inside the same latency bucket, so the
        // estimate is off by at most that bucket's width.
        let bucket = |v: f64| LATENCY_BOUNDS.iter().position(|&b| v <= b).unwrap_or(LATENCY_BOUNDS.len());
        prop_assert_eq!(
            bucket(est),
            bucket(exact),
            "estimate {} and exact {} in different buckets at q={}",
            est, exact, q
        );
        // And it always stays within the observed range.
        prop_assert!(est >= xs[0] && est <= xs[n - 1]);
        prop_assert_eq!(h.quantile(0.0).unwrap(), xs[0]);
        prop_assert_eq!(h.quantile(1.0).unwrap(), xs[n - 1]);
    }
}
